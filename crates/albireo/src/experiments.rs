//! Drivers that regenerate every figure of the paper's evaluation.
//!
//! Each function returns a structured result with the same rows/series the
//! paper plots, renderable as an ASCII table (`table()` / `Display`). The
//! benches in `lumen-bench` and the `lumen` CLI call straight into these.

use crate::{reference, reference_layer, AlbireoConfig, ScalingProfile, WeightReuse};
use lumen_core::report::Table;
use lumen_core::{
    EnergyBreakdown, EvalCache, EvalSession, NetworkOptions, SweepRunner, SystemError,
};
use lumen_workload::networks;
use std::fmt;
use std::sync::Arc;

/// Sums breakdown labels into one of the paper's component buckets.
fn bucket_pj(breakdown: &EnergyBreakdown, labels: &[&str]) -> f64 {
    labels
        .iter()
        .map(|l| breakdown.by_label(l).picojoules())
        .sum()
}

/// The Fig. 2 / Fig. 4 / Fig. 5 label groupings.
mod buckets {
    pub const MRR: &[&str] = &["mrr-tuning"];
    pub const MZM: &[&str] = &["input-mzm"];
    pub const LASER: &[&str] = &["laser"];
    pub const AO_AE: &[&str] = &["output-pd"];
    pub const DE_AE: &[&str] = &["weight-dac", "input-dac"];
    pub const AE_DE: &[&str] = &["output-adc"];
    pub const CACHE: &[&str] = &["glb"];
    pub const DRAM: &[&str] = &["dram"];
    pub const OTHER_AO: &[&str] = &["laser", "mrr-tuning", "star-coupler", "pe", "static"];
    pub const WEIGHT_CONV: &[&str] = &["weight-dac"];
    pub const INPUT_CONV: &[&str] = &["input-dac", "input-mzm"];
    pub const OUTPUT_CONV: &[&str] = &["output-adc", "output-pd"];
}

// ---------------------------------------------------------------------
// Fig. 2 — energy-breakdown validation
// ---------------------------------------------------------------------

/// One scaling corner of the Fig. 2 validation.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The scaling corner.
    pub scaling: ScalingProfile,
    /// Modeled pJ/MAC per component, [`reference::FIG2_COMPONENTS`] order.
    pub modeled: [f64; 7],
    /// Reported pJ/MAC per component.
    pub reported: [f64; 7],
}

impl Fig2Row {
    /// Modeled total pJ/MAC.
    pub fn modeled_total(&self) -> f64 {
        self.modeled.iter().sum()
    }

    /// Reported total pJ/MAC.
    pub fn reported_total(&self) -> f64 {
        self.reported.iter().sum()
    }

    /// Relative error of the modeled total.
    pub fn total_error(&self) -> f64 {
        (self.modeled_total() - self.reported_total()).abs() / self.reported_total()
    }
}

/// The Fig. 2 result: modeled vs reported best-case energy breakdowns.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// One row per scaling corner.
    pub rows: Vec<Fig2Row>,
}

impl Fig2Result {
    /// Average relative error of the per-corner totals (the paper reports
    /// 0.4%).
    pub fn average_error(&self) -> f64 {
        self.rows.iter().map(Fig2Row::total_error).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the figure as a table (one modeled + one reported line per
    /// corner).
    pub fn table(&self) -> Table {
        let mut header = vec!["scaling".to_string(), "series".to_string()];
        header.extend(reference::FIG2_COMPONENTS.iter().map(ToString::to_string));
        header.push("total".into());
        let mut t = Table::new(header);
        for row in &self.rows {
            for (series, values) in [("Model", &row.modeled), ("Reported", &row.reported)] {
                let mut cells = vec![row.scaling.to_string(), series.to_string()];
                cells.extend(values.iter().map(|v| format!("{v:.3}")));
                cells.push(format!("{:.3}", values.iter().sum::<f64>()));
                t.row(cells);
            }
        }
        t
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2 — best-case energy breakdown (pJ/MAC)")?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "average total error: {:.2}%",
            100.0 * self.average_error()
        )
    }
}

/// Reproduces Fig. 2: the best-case per-MAC energy breakdown of Albireo
/// under three scaling corners, modeled bottom-up and compared against the
/// reported values.
pub fn fig2_energy_breakdown() -> Result<Fig2Result, SystemError> {
    let layer = reference_layer();
    let rows = SweepRunner::new().try_run(ScalingProfile::ALL, |scaling| {
        let session = EvalSession::new(AlbireoConfig::new(scaling).build_system())
            .with_runner(SweepRunner::with_threads(1));
        let eval = session.evaluate_layer(&layer)?;
        let macs = eval.analysis.macs as f64;
        let per_mac = |labels: &[&str]| bucket_pj(&eval.energy, labels) / macs;
        let modeled = [
            per_mac(buckets::MRR),
            per_mac(buckets::MZM),
            per_mac(buckets::LASER),
            per_mac(buckets::AO_AE),
            per_mac(buckets::DE_AE),
            per_mac(buckets::AE_DE),
            per_mac(buckets::CACHE),
        ];
        Ok(Fig2Row {
            scaling,
            modeled,
            reported: reference::reported_row(scaling),
        })
    })?;
    Ok(Fig2Result { rows })
}

// ---------------------------------------------------------------------
// Fig. 3 — throughput
// ---------------------------------------------------------------------

/// One network of the Fig. 3 throughput comparison.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Workload name.
    pub network: String,
    /// Peak MACs/cycle (100% utilization).
    pub ideal: f64,
    /// The throughput reported by the Albireo paper.
    pub reported: f64,
    /// Lumen's modeled throughput (captures under-utilization).
    pub modeled: f64,
}

/// The Fig. 3 result.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// One row per workload.
    pub rows: Vec<Fig3Row>,
}

impl Fig3Result {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "network".into(),
            "ideal".into(),
            "reported".into(),
            "modeled".into(),
            "modeled/ideal".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.network.clone(),
                format!("{:.0}", row.ideal),
                format!("{:.0}", row.reported),
                format!("{:.0}", row.modeled),
                format!("{:.1}%", 100.0 * row.modeled / row.ideal),
            ]);
        }
        t
    }
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3 — throughput (MACs/cycle)")?;
        write!(f, "{}", self.table().render())
    }
}

/// Reproduces Fig. 3: ideal vs reported vs modeled throughput for VGG16
/// and AlexNet on conservative Albireo. The model captures the
/// under-utilization from strided convolutions and fully-connected layers
/// that the reported numbers gloss over.
pub fn fig3_throughput() -> Result<Fig3Result, SystemError> {
    // One session for both workloads: the parallelism lives inside
    // `evaluate_network`'s unique-layer fan-out, and repeated layer
    // shapes (VGG's stacked 3x3 stages) evaluate once.
    let session = EvalSession::new(AlbireoConfig::new(ScalingProfile::Conservative).build_system());
    let ideal = session.system().arch().peak_parallelism() as f64;
    let mut rows = Vec::new();
    for (name, reported) in reference::REPORTED_FIG3 {
        let net = networks::by_name(name).expect("reference networks exist");
        let eval = session.evaluate_network(&net, &NetworkOptions::baseline())?;
        rows.push(Fig3Row {
            network: name.to_string(),
            ideal,
            reported,
            modeled: eval.throughput_macs_per_cycle(),
        });
    }
    Ok(Fig3Result { rows })
}

// ---------------------------------------------------------------------
// Fig. 4 — full-system (accelerator + DRAM) memory exploration
// ---------------------------------------------------------------------

/// The Fig. 4 / Fig. 5 energy segments, in display order.
pub const MEMORY_SEGMENTS: [&str; 6] = [
    "Other AO",
    "Weight DE/AE, AE/AO",
    "Input DE/AE, AE/AO",
    "Output AO/AE, AE/DE",
    "On-Chip Buffer",
    "DRAM",
];

/// One bar of the Fig. 4 exploration.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// The scaling corner.
    pub scaling: ScalingProfile,
    /// Whether inputs/outputs are batched (batch 16).
    pub batched: bool,
    /// Whether inter-layer activations are fused into the global buffer.
    pub fused: bool,
    /// Per-inference energy per segment in millijoules,
    /// [`MEMORY_SEGMENTS`] order.
    pub segments_mj: [f64; 6],
    /// Total normalized to the same corner's non-batched, non-fused bar.
    pub normalized_total: f64,
}

impl Fig4Row {
    /// Per-inference total in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.segments_mj.iter().sum()
    }

    /// DRAM's share of this bar (0..=1).
    pub fn dram_share(&self) -> f64 {
        self.segments_mj[5] / self.total_mj()
    }
}

/// The Fig. 4 result.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Eight bars: two corners × batched × fused.
    pub rows: Vec<Fig4Row>,
}

impl Fig4Result {
    /// The bar for a given configuration.
    pub fn row(&self, scaling: ScalingProfile, batched: bool, fused: bool) -> &Fig4Row {
        self.rows
            .iter()
            .find(|r| r.scaling == scaling && r.batched == batched && r.fused == fused)
            .expect("all eight configurations evaluated")
    }

    /// Energy reduction of batching + fusion at a corner (the paper: 67%
    /// for aggressive scaling, a 3× improvement).
    pub fn combined_reduction(&self, scaling: ScalingProfile) -> f64 {
        let base = self.row(scaling, false, false).total_mj();
        let best = self.row(scaling, true, true).total_mj();
        1.0 - best / base
    }

    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut header = vec!["config".to_string()];
        header.extend(MEMORY_SEGMENTS.iter().map(ToString::to_string));
        header.extend(["total (mJ)".to_string(), "normalized".to_string()]);
        let mut t = Table::new(header);
        for row in &self.rows {
            let name = format!(
                "{} {} {}",
                row.scaling,
                if row.fused { "fused" } else { "not-fused" },
                if row.batched {
                    "batched"
                } else {
                    "non-batched"
                },
            );
            let mut cells = vec![name];
            cells.extend(row.segments_mj.iter().map(|v| format!("{v:.3}")));
            cells.push(format!("{:.3}", row.total_mj()));
            cells.push(format!("{:.3}", row.normalized_total));
            t.row(cells);
        }
        t
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 4 — ResNet18 full-system energy (per inference, normalized per scaling)"
        )?;
        write!(f, "{}", self.table().render())?;
        for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
            writeln!(
                f,
                "{scaling}: baseline DRAM share {:.0}%, batching+fusion reduce energy {:.0}%",
                100.0 * self.row(scaling, false, false).dram_share(),
                100.0 * self.combined_reduction(scaling),
            )?;
        }
        Ok(())
    }
}

fn memory_segments(energy: &EnergyBreakdown) -> [f64; 6] {
    let mj = |labels: &[&str]| bucket_pj(energy, labels) / 1e9;
    [
        mj(buckets::OTHER_AO),
        mj(buckets::WEIGHT_CONV),
        mj(buckets::INPUT_CONV),
        mj(buckets::OUTPUT_CONV),
        mj(buckets::CACHE),
        mj(buckets::DRAM),
    ]
}

/// Reproduces Fig. 4: connecting Albireo to DRAM and exploring batching
/// (batch 16) and fused-layer dataflows (activations pinned in an enlarged
/// global buffer) on ResNet18, for the conservative and aggressive
/// corners.
pub fn fig4_memory_exploration() -> Result<Fig4Result, SystemError> {
    let net = networks::resnet18();
    let mut corners = Vec::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        for fused in [false, true] {
            for batched in [false, true] {
                corners.push((scaling, fused, batched));
            }
        }
    }
    // One cache across all eight bars. Each bar is a distinct
    // (architecture, batch, reroute) combination, so the payoff here is
    // within-bar: ResNet18's repeated residual stages evaluate once per
    // bar; the shared cache additionally serves any caller rerunning the
    // exploration in-process.
    let cache = EvalCache::shared();
    let mut rows = SweepRunner::new().try_run(corners, |(scaling, fused, batched)| {
        // Fusion needs a buffer large enough for inter-layer
        // activations; the paper notes this costs buffer energy.
        let glb_mib = if fused { 16 } else { 4 };
        let system = AlbireoConfig::new(scaling)
            .with_glb_mebibytes(glb_mib)
            .build_system();
        let session = EvalSession::new(system)
            .with_cache(Arc::clone(&cache))
            .with_runner(SweepRunner::with_threads(1));
        let mut options = NetworkOptions::baseline();
        if batched {
            options = options.with_batch(16);
        }
        if fused {
            options = options.with_fusion("dram", "glb");
        }
        let eval = session.evaluate_network(&net, &options)?;
        let segments_mj = memory_segments(&eval.energy);
        Ok(Fig4Row {
            scaling,
            batched,
            fused,
            segments_mj,
            // Filled in below once the corner's baseline bar is known.
            normalized_total: f64::NAN,
        })
    })?;
    // Normalize each bar to its corner's non-batched, non-fused
    // baseline. Baselines are derived from the rows themselves, so every
    // row is guaranteed a finite normalization (or a loud panic if the
    // corner list ever stops including its own baseline).
    let baselines: Vec<(ScalingProfile, f64)> = rows
        .iter()
        .filter(|r| !r.batched && !r.fused)
        .map(|r| (r.scaling, r.total_mj()))
        .collect();
    for row in &mut rows {
        let (_, base) = baselines
            .iter()
            .find(|(scaling, _)| *scaling == row.scaling)
            .expect("every corner's baseline bar is part of the sweep");
        row.normalized_total = row.total_mj() / base;
    }
    Ok(Fig4Result { rows })
}

// ---------------------------------------------------------------------
// Fig. 5 — architecture exploration of analog/optical reuse
// ---------------------------------------------------------------------

/// One configuration of the Fig. 5 reuse sweep.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Weight-sharing variant.
    pub weight_reuse: WeightReuse,
    /// OR: analog output accumulation factor.
    pub output_reuse: usize,
    /// IR: optical input broadcast factor.
    pub input_reuse: usize,
    /// Accelerator-only energy per MAC in picojoules per segment
    /// (`MEMORY_SEGMENTS[..5]` order — no DRAM).
    pub segments_pj_per_mac: [f64; 5],
}

impl Fig5Row {
    /// Accelerator energy per MAC (pJ).
    pub fn total_pj(&self) -> f64 {
        self.segments_pj_per_mac.iter().sum()
    }

    /// Data-converter energy per MAC (weight + input + output
    /// conversions).
    pub fn converter_pj(&self) -> f64 {
        self.segments_pj_per_mac[1] + self.segments_pj_per_mac[2] + self.segments_pj_per_mac[3]
    }
}

/// The Fig. 5 result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// 18 rows: 2 weight variants × OR ∈ {3,9,15} × IR ∈ {9,27,45}.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// The published Albireo configuration's row.
    pub fn original(&self) -> &Fig5Row {
        self.rows
            .iter()
            .find(|r| {
                r.weight_reuse == WeightReuse::Original && r.output_reuse == 3 && r.input_reuse == 9
            })
            .expect("original configuration is part of the sweep")
    }

    /// The lowest-energy configuration.
    pub fn best(&self) -> &Fig5Row {
        self.rows
            .iter()
            .min_by(|a, b| a.total_pj().total_cmp(&b.total_pj()))
            .expect("sweep is nonempty")
    }

    /// Converter-energy reduction of the best configuration vs the
    /// original (the paper: 42%).
    pub fn converter_reduction(&self) -> f64 {
        1.0 - self.best().converter_pj() / self.original().converter_pj()
    }

    /// Accelerator-energy reduction of the best configuration vs the
    /// original (the paper: 31%).
    pub fn accelerator_reduction(&self) -> f64 {
        1.0 - self.best().total_pj() / self.original().total_pj()
    }

    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut header = vec!["config".to_string()];
        header.extend(MEMORY_SEGMENTS[..5].iter().map(ToString::to_string));
        header.push("total pJ/MAC".into());
        let mut t = Table::new(header);
        for row in &self.rows {
            let name = format!(
                "{} OR={} IR={}",
                match row.weight_reuse {
                    WeightReuse::Original => "Original",
                    WeightReuse::More => "MoreWR",
                },
                row.output_reuse,
                row.input_reuse
            );
            let mut cells = vec![name];
            cells.extend(row.segments_pj_per_mac.iter().map(|v| format!("{v:.4}")));
            cells.push(format!("{:.4}", row.total_pj()));
            t.row(cells);
        }
        t
    }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 5 — ResNet18 accelerator energy vs analog/optical reuse (aggressive scaling)"
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "best config cuts converter energy {:.0}% and accelerator energy {:.0}% vs original",
            100.0 * self.converter_reduction(),
            100.0 * self.accelerator_reduction(),
        )
    }
}

/// Reproduces Fig. 5: sweeping the aggressive Albireo's spatial-reuse
/// factors (OR ∈ {3,9,15}, IR ∈ {9,27,45}, original vs more weight reuse)
/// on ResNet18 and reporting accelerator-only energy per MAC.
pub fn fig5_reuse_exploration() -> Result<Fig5Result, SystemError> {
    let net = networks::resnet18();
    let mut corners = Vec::new();
    for weight_reuse in [WeightReuse::Original, WeightReuse::More] {
        for output_reuse in [3usize, 9, 15] {
            for input_reuse in [9usize, 27, 45] {
                corners.push((weight_reuse, output_reuse, input_reuse));
            }
        }
    }
    // Each of the 18 corners is a distinct architecture, so the shared
    // cache's wins here come from ResNet18's repeated stages within a
    // corner; the outer runner supplies the parallelism.
    let cache = EvalCache::shared();
    let rows =
        SweepRunner::new().try_run(corners, |(weight_reuse, output_reuse, input_reuse)| {
            let system = AlbireoConfig::new(ScalingProfile::Aggressive)
                .with_weight_reuse(weight_reuse)
                .with_output_reuse(output_reuse)
                .with_input_reuse(input_reuse)
                .build_system();
            let session = EvalSession::new(system)
                .with_cache(Arc::clone(&cache))
                .with_runner(SweepRunner::with_threads(1));
            let eval = session.evaluate_network(&net, &NetworkOptions::baseline())?;
            let segments = memory_segments(&eval.energy);
            let macs = eval.macs as f64;
            // Accelerator-only: drop DRAM, convert mJ to pJ/MAC.
            let mut per_mac = [0.0; 5];
            for (i, seg) in segments[..5].iter().enumerate() {
                per_mac[i] = seg * 1e9 / macs;
            }
            Ok(Fig5Row {
                weight_reuse,
                output_reuse,
                input_reuse,
                segments_pj_per_mac: per_mac,
            })
        })?;
    Ok(Fig5Result { rows })
}

// ---------------------------------------------------------------------
// Transformer study — beyond the paper: attention/matmul workloads
// ---------------------------------------------------------------------

/// One workload of the transformer study.
#[derive(Debug, Clone)]
pub struct TransformerRow {
    /// Workload name.
    pub network: String,
    /// Total GMACs per inference.
    pub gmacs: f64,
    /// Fraction of MACs in GEMM-shaped layers.
    pub gemm_fraction: f64,
    /// Photonic (Albireo) energy per MAC in pJ.
    pub photonic_pj_per_mac: f64,
    /// Digital-baseline energy per MAC in pJ.
    pub digital_pj_per_mac: f64,
    /// Photonic MAC-weighted compute utilization (0, 1].
    pub photonic_utilization: f64,
    /// Digital MAC-weighted compute utilization (0, 1].
    pub digital_utilization: f64,
    /// Photonic throughput in GMAC/s (MACs/cycle × symbol rate).
    pub photonic_gmacs_per_s: f64,
    /// Digital throughput in GMAC/s.
    pub digital_gmacs_per_s: f64,
}

impl TransformerRow {
    /// Photonic energy advantage (>1 favors photonics).
    pub fn energy_advantage(&self) -> f64 {
        self.digital_pj_per_mac / self.photonic_pj_per_mac
    }

    /// Photonic throughput advantage (>1 favors photonics).
    pub fn throughput_advantage(&self) -> f64 {
        self.photonic_gmacs_per_s / self.digital_gmacs_per_s
    }
}

/// The transformer study: photonic vs digital on attention-dominated
/// workloads at one scaling corner.
#[derive(Debug, Clone)]
pub struct TransformerStudyResult {
    /// The photonic system's scaling corner.
    pub scaling: ScalingProfile,
    /// One row per transformer workload.
    pub rows: Vec<TransformerRow>,
}

impl TransformerStudyResult {
    /// The row for a named workload.
    pub fn row(&self, network: &str) -> &TransformerRow {
        self.rows
            .iter()
            .find(|r| r.network == network)
            .expect("every transformer workload evaluated")
    }

    /// Renders the study as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "network".into(),
            "GMACs".into(),
            "gemm share".into(),
            "photonic pJ/MAC".into(),
            "digital pJ/MAC".into(),
            "energy adv".into(),
            "photonic util".into(),
            "digital util".into(),
            "throughput adv".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.network.clone(),
                format!("{:.2}", row.gmacs),
                format!("{:.0}%", 100.0 * row.gemm_fraction),
                format!("{:.3}", row.photonic_pj_per_mac),
                format!("{:.3}", row.digital_pj_per_mac),
                format!("{:.2}x", row.energy_advantage()),
                format!("{:.1}%", 100.0 * row.photonic_utilization),
                format!("{:.1}%", 100.0 * row.digital_utilization),
                format!("{:.2}x", row.throughput_advantage()),
            ]);
        }
        t
    }
}

impl fmt::Display for TransformerStudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Transformer study — photonic ({}) vs digital baseline, full system incl. DRAM",
            self.scaling
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "matmul workloads idle the sliding-window fabric (no R/S window, \
             no Q sharing): photonics keep the energy edge only where \
             conversion scaling pays for it, and lose the throughput edge \
             that convolutions enjoy"
        )
    }
}

/// Runs the transformer study: evaluates every transformer workload on
/// the Albireo system at `scaling` and on the digital baseline, and
/// reports per-MAC energy, utilization and throughput side by side.
///
/// This extends the paper's methodology (unchanged — the same
/// architecture, mapper and nest analysis) to the workload class the
/// very-large-scale photonic literature targets: attention and MLP
/// matmuls, whose reuse comes from the sequence dimension rather than a
/// sliding window, and whose K/V operands must be converted like weights.
pub fn transformer_study(scaling: ScalingProfile) -> Result<TransformerStudyResult, SystemError> {
    use crate::DigitalBaseline;

    // The transformer workloads are the content-addressed pipeline's
    // showcase: bert-base repeats one encoder block 12x (96 layers, 5
    // unique signatures), so each session maps a handful of layers and
    // answers the rest from cache, fanning the unique work out over the
    // sweep threads.
    let photonic = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let digital = EvalSession::new(DigitalBaseline::new().build_system());
    let photonic_clock = photonic.system().arch().clock().gigahertz();
    let digital_clock = digital.system().arch().clock().gigahertz();
    let mut rows = Vec::new();
    for name in networks::TRANSFORMER_NAMES {
        let net = networks::by_name(name).expect("transformer networks exist");
        let p = photonic.evaluate_network(&net, &NetworkOptions::baseline())?;
        let d = digital.evaluate_network(&net, &NetworkOptions::baseline())?;
        rows.push(TransformerRow {
            network: name.to_string(),
            gmacs: net.total_macs() as f64 / 1e9,
            gemm_fraction: net.gemm_mac_fraction(),
            photonic_pj_per_mac: p.energy_per_mac().picojoules(),
            digital_pj_per_mac: d.energy_per_mac().picojoules(),
            photonic_utilization: p.average_utilization(),
            digital_utilization: d.average_utilization(),
            photonic_gmacs_per_s: p.throughput_macs_per_cycle() * photonic_clock,
            digital_gmacs_per_s: d.throughput_macs_per_cycle() * digital_clock,
        });
    }
    Ok(TransformerStudyResult { scaling, rows })
}

// ---------------------------------------------------------------------
// Decode study — beyond the paper: autoregressive serving (GEMV + KV cache)
// ---------------------------------------------------------------------

/// The KV lengths the decode study sweeps (cached tokens before the
/// step), spanning a short chat turn to beyond GPT-2 small's training
/// context.
pub const DECODE_KV_LENGTHS: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Photonic-vs-digital comparison at one operating point: energy per MAC
/// and utilization on both systems. The decode study's prefill reference
/// is exactly one of these, and every [`DecodeRow`] embeds one — so the
/// derived ratio metrics the study compares across the crossover are
/// defined in one place.
#[derive(Debug, Clone)]
pub struct PhotonicVsDigital {
    /// Photonic (Albireo) energy per MAC in pJ.
    pub photonic_pj_per_mac: f64,
    /// Digital-baseline energy per MAC in pJ.
    pub digital_pj_per_mac: f64,
    /// Photonic MAC-weighted compute utilization (0, 1].
    pub photonic_utilization: f64,
    /// Digital MAC-weighted compute utilization (0, 1].
    pub digital_utilization: f64,
}

impl PhotonicVsDigital {
    /// Photonic energy advantage (>1 favors photonics).
    pub fn energy_advantage(&self) -> f64 {
        self.digital_pj_per_mac / self.photonic_pj_per_mac
    }

    /// Digital-over-photonic utilization ratio (>1 means the digital
    /// array keeps more of its fabric busy than the photonic one).
    pub fn utilization_gap(&self) -> f64 {
        self.digital_utilization / self.photonic_utilization
    }
}

/// One KV length of the decode study.
#[derive(Debug, Clone)]
pub struct DecodeRow {
    /// Tokens cached before the step.
    pub kv_len: usize,
    /// MACs per generated token, in millions.
    pub mmacs_per_token: f64,
    /// Energy and utilization on both systems at this KV length.
    pub vs: PhotonicVsDigital,
    /// Photonic decode throughput in generated tokens per second.
    pub photonic_tokens_per_s: f64,
    /// Digital decode throughput in generated tokens per second.
    pub digital_tokens_per_s: f64,
}

impl DecodeRow {
    /// Photonic energy advantage (>1 favors photonics).
    pub fn energy_advantage(&self) -> f64 {
        self.vs.energy_advantage()
    }

    /// Digital-over-photonic utilization ratio (>1 means the digital
    /// array keeps more of its fabric busy than the photonic one).
    pub fn utilization_gap(&self) -> f64 {
        self.vs.utilization_gap()
    }
}

/// The decode study: photonic vs digital on autoregressive GPT-2 small
/// decoding as the KV cache grows, with the prefill phase as the
/// crossover reference and the evaluation cache's accounting for the
/// whole sweep.
#[derive(Debug, Clone)]
pub struct DecodeStudyResult {
    /// The photonic system's scaling corner.
    pub scaling: ScalingProfile,
    /// The prefill reference point (GPT-2 small at seq 1024), the
    /// crossover partner of the per-token rows.
    pub prefill: PhotonicVsDigital,
    /// One row per swept KV length.
    pub rows: Vec<DecodeRow>,
    /// Layer evaluations the photonic decode sweep requested.
    pub trace_layer_evals: u64,
    /// Mapping searches those evaluations actually cost (cache misses).
    pub trace_mapping_searches: u64,
}

impl DecodeStudyResult {
    /// The row for a given KV length.
    pub fn row(&self, kv_len: usize) -> &DecodeRow {
        self.rows
            .iter()
            .find(|r| r.kv_len == kv_len)
            .expect("every swept KV length evaluated")
    }

    /// Fraction of the decode sweep's layer evaluations answered from
    /// the cache (0 when the sweep ran uncached — `--no-cache` /
    /// `LUMEN_EVAL_CACHE=0` — and no lookups were counted).
    pub fn trace_hit_rate(&self) -> f64 {
        if self.trace_layer_evals == 0 {
            return 0.0;
        }
        1.0 - self.trace_mapping_searches as f64 / self.trace_layer_evals as f64
    }

    /// Renders the study as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "kv len".into(),
            "MMACs/tok".into(),
            "photonic pJ/MAC".into(),
            "digital pJ/MAC".into(),
            "energy adv".into(),
            "photonic util".into(),
            "digital util".into(),
            "util gap".into(),
            "photonic tok/s".into(),
            "digital tok/s".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.kv_len.to_string(),
                format!("{:.1}", row.mmacs_per_token),
                format!("{:.3}", row.vs.photonic_pj_per_mac),
                format!("{:.3}", row.vs.digital_pj_per_mac),
                format!("{:.2}x", row.energy_advantage()),
                format!("{:.1}%", 100.0 * row.vs.photonic_utilization),
                format!("{:.1}%", 100.0 * row.vs.digital_utilization),
                format!("{:.1}x", row.utilization_gap()),
                format!("{:.0}", row.photonic_tokens_per_s),
                format!("{:.0}", row.digital_tokens_per_s),
            ]);
        }
        t
    }
}

impl fmt::Display for DecodeStudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Decode study — GPT-2 small autoregressive decode, photonic ({}) vs digital baseline",
            self.scaling
        )?;
        writeln!(
            f,
            "prefill reference (seq 1024): photonic {:.3} pJ/MAC at {:.1}% util | \
             digital {:.3} pJ/MAC at {:.1}% util | energy adv {:.2}x | util gap {:.1}x",
            self.prefill.photonic_pj_per_mac,
            100.0 * self.prefill.photonic_utilization,
            self.prefill.digital_pj_per_mac,
            100.0 * self.prefill.digital_utilization,
            self.prefill.energy_advantage(),
            self.prefill.utilization_gap(),
        )?;
        write!(f, "{}", self.table().render())?;
        let last = self.rows.last().expect("sweep is nonempty");
        writeln!(
            f,
            "utilization gap (digital/photonic) widens from {:.1}x at prefill to {:.1}x at \
             kv={} decode: seq-1 GEMVs idle the photonic cluster fan-out that prefill's \
             sequence extent kept busy",
            self.prefill.utilization_gap(),
            last.utilization_gap(),
            last.kv_len,
        )?;
        if self.trace_layer_evals == 0 {
            return writeln!(f, "eval cache: disabled (uncached A/B run)");
        }
        writeln!(
            f,
            "eval cache: {} mapping searches served {} photonic decode layer evaluations \
             ({:.1}% hit rate — per-step layers dedupe by KV length)",
            self.trace_mapping_searches,
            self.trace_layer_evals,
            100.0 * self.trace_hit_rate(),
        )
    }
}

/// Runs the decode study: evaluates GPT-2 small's decode step at every
/// [`DECODE_KV_LENGTHS`] entry on the Albireo system at `scaling` and on
/// the digital baseline — all KV lengths through one [`EvalSession`] per
/// system, so the sweep's mapping-search cost is bounded by the KV
/// lengths, not the layer count — plus the prefill network as the
/// crossover reference.
///
/// This is the serving regime the very-large-scale photonic literature
/// targets, and the paper's utilization argument at its worst case: each
/// step is one token's worth of GEMVs whose `logits`/`attend` reduction
/// is the current KV length, with the cache read in full (and appended
/// to) every step.
pub fn decode_study(scaling: ScalingProfile) -> Result<DecodeStudyResult, SystemError> {
    use crate::DigitalBaseline;
    use lumen_core::decode::decode_sweep;

    let photonic = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let digital = EvalSession::new(DigitalBaseline::new().build_system());
    let photonic_clock = photonic.system().arch().clock();
    let digital_clock = digital.system().arch().clock();

    // Prefill reference: same sessions (the projections/MLP signatures
    // are prefill-specific at seq 1024, so this costs its own searches
    // but shares nothing incorrectly).
    let prefill_net = networks::gpt2_small();
    let p_prefill = photonic.evaluate_network(&prefill_net, &NetworkOptions::baseline())?;
    let d_prefill = digital.evaluate_network(&prefill_net, &NetworkOptions::baseline())?;
    let prefill = PhotonicVsDigital {
        photonic_pj_per_mac: p_prefill.energy_per_mac().picojoules(),
        digital_pj_per_mac: d_prefill.energy_per_mac().picojoules(),
        photonic_utilization: p_prefill.average_utilization(),
        digital_utilization: d_prefill.average_utilization(),
    };

    // Snapshot the cache counters so the reported trace accounting
    // covers exactly the decode sweep.
    let before = photonic.cache_stats();
    let p_points = decode_sweep(
        &photonic,
        &DECODE_KV_LENGTHS,
        &NetworkOptions::baseline(),
        networks::gpt2_small_decode,
    )?;
    let after = photonic.cache_stats();
    let d_points = decode_sweep(
        &digital,
        &DECODE_KV_LENGTHS,
        &NetworkOptions::baseline(),
        networks::gpt2_small_decode,
    )?;

    let rows = p_points
        .iter()
        .zip(&d_points)
        .map(|(p, d)| DecodeRow {
            kv_len: p.kv_len,
            mmacs_per_token: p.evaluation.macs as f64 / 1e6,
            vs: PhotonicVsDigital {
                photonic_pj_per_mac: p.evaluation.energy_per_mac().picojoules(),
                digital_pj_per_mac: d.evaluation.energy_per_mac().picojoules(),
                photonic_utilization: p.evaluation.average_utilization(),
                digital_utilization: d.evaluation.average_utilization(),
            },
            photonic_tokens_per_s: p.tokens_per_second(photonic_clock),
            digital_tokens_per_s: d.tokens_per_second(digital_clock),
        })
        .collect();

    Ok(DecodeStudyResult {
        scaling,
        prefill,
        rows,
        trace_layer_evals: (after.hits + after.misses) - (before.hits + before.misses),
        trace_mapping_searches: after.misses - before.misses,
    })
}

// ---------------------------------------------------------------------
// Serving study — beyond the paper: continuous batching of mixed traffic
// ---------------------------------------------------------------------

/// The KV bucket the serving study lowers steps with (hardware tile /
/// KV-page granularity). Coarse on purpose: at 256 tokens the whole
/// study's KV range spans a handful of buckets, so thousands of steps
/// share a few dozen layer signatures.
pub const SERVING_KV_BUCKET: usize = 256;

/// The slot counts the study sweeps: a backlogged regime (fewer slots
/// than requests keeps every slot busy) and an all-admitted regime
/// (occupancy decays as requests retire).
pub const SERVING_CAPACITIES: [usize; 2] = [3, 12];

/// The mixed-length request populations the study schedules — the
/// serving-traffic shapes the continuous-batching literature targets.
/// Deterministic (fixed seeds), like every other input of the golden
/// suite.
pub fn serving_mixes() -> Vec<lumen_workload::RequestMix> {
    use lumen_workload::RequestMix;
    vec![
        // Identical chat turns: the uniform-batch baseline.
        RequestMix::uniform(12, 128, 32),
        // Chat with a 25% admixture of long-document requests.
        RequestMix::bimodal(0x5EED_CAFE, 12, (64, 16), (512, 48), 25),
        // Geometric output tail: most requests stop early, a few run 8x.
        RequestMix::long_tail(0x0BA7_C4ED, 12, (64, 384), 12, 3),
    ]
}

/// One (mix, capacity) operating point of the serving study.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// The request mix's display name.
    pub mix: String,
    /// Decode slots of the scheduler.
    pub capacity: usize,
    /// Requests in the mix.
    pub requests: usize,
    /// Scheduler steps until the last request retired.
    pub steps: usize,
    /// Mean slot occupancy over the trace, in (0, 1].
    pub mean_occupancy: f64,
    /// Energy per MAC and utilization on both systems over the trace.
    pub vs: PhotonicVsDigital,
    /// Photonic energy per generated token, in millijoules.
    pub photonic_mj_per_token: f64,
    /// Digital energy per generated token, in millijoules.
    pub digital_mj_per_token: f64,
    /// Photonic aggregate serving throughput, generated tokens/s.
    pub photonic_tokens_per_s: f64,
    /// Digital aggregate serving throughput, generated tokens/s.
    pub digital_tokens_per_s: f64,
}

impl ServingRow {
    /// Photonic energy advantage (>1 favors photonics). Both systems
    /// run the same schedule, so the per-token and per-MAC ratios agree.
    pub fn energy_advantage(&self) -> f64 {
        self.vs.energy_advantage()
    }

    /// Digital-over-photonic utilization ratio (>1 means the digital
    /// array keeps more of its fabric busy than the photonic one).
    pub fn utilization_gap(&self) -> f64 {
        self.vs.utilization_gap()
    }
}

/// The serving study: photonic vs digital on continuous batching of
/// mixed-length GPT-2 small traffic, across mix shapes and occupancy
/// regimes, with the evaluation cache's accounting for the whole study.
#[derive(Debug, Clone)]
pub struct ServingStudyResult {
    /// The photonic system's scaling corner.
    pub scaling: ScalingProfile,
    /// The KV bucket steps were lowered with.
    pub kv_bucket: usize,
    /// One row per (mix, capacity) pair, mixes outer, capacities inner.
    pub rows: Vec<ServingRow>,
    /// Layer evaluations the photonic serving sweeps requested.
    pub trace_layer_evals: u64,
    /// Mapping searches those evaluations actually cost (cache misses).
    pub trace_mapping_searches: u64,
}

impl ServingStudyResult {
    /// The row for a given mix name and capacity.
    pub fn row(&self, mix: &str, capacity: usize) -> &ServingRow {
        self.rows
            .iter()
            .find(|r| r.mix == mix && r.capacity == capacity)
            .expect("every (mix, capacity) pair evaluated")
    }

    /// Fraction of the study's photonic layer evaluations answered from
    /// the cache (0 when the study ran uncached — `--no-cache` /
    /// `LUMEN_EVAL_CACHE=0` — and no lookups were counted).
    pub fn trace_hit_rate(&self) -> f64 {
        if self.trace_layer_evals == 0 {
            return 0.0;
        }
        1.0 - self.trace_mapping_searches as f64 / self.trace_layer_evals as f64
    }

    /// Renders the study as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "mix".into(),
            "slots".into(),
            "steps".into(),
            "occupancy".into(),
            "photonic mJ/tok".into(),
            "digital mJ/tok".into(),
            "energy adv".into(),
            "photonic util".into(),
            "digital util".into(),
            "util gap".into(),
            "photonic tok/s".into(),
            "digital tok/s".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.mix.clone(),
                row.capacity.to_string(),
                row.steps.to_string(),
                format!("{:.0}%", 100.0 * row.mean_occupancy),
                format!("{:.2}", row.photonic_mj_per_token),
                format!("{:.2}", row.digital_mj_per_token),
                format!("{:.2}x", row.energy_advantage()),
                format!("{:.1}%", 100.0 * row.vs.photonic_utilization),
                format!("{:.1}%", 100.0 * row.vs.digital_utilization),
                format!("{:.1}x", row.utilization_gap()),
                format!("{:.0}", row.photonic_tokens_per_s),
                format!("{:.0}", row.digital_tokens_per_s),
            ]);
        }
        t
    }
}

impl fmt::Display for ServingStudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Serving study — GPT-2 small continuous batching, photonic ({}) vs digital \
             baseline (kv bucket {})",
            self.scaling, self.kv_bucket
        )?;
        write!(f, "{}", self.table().render())?;
        let uniform = &self.rows[0].mix;
        let backlogged = self.row(uniform, SERVING_CAPACITIES[0]);
        let wide = self.row(uniform, SERVING_CAPACITIES[1]);
        writeln!(
            f,
            "occupancy lever ({uniform}): {} slots at {:.0}% occupancy -> {:.2} mJ/token \
             photonic, {} slots -> {:.2} mJ/token (group batching shares projection weight \
             traffic; per-request KV caches never amortize)",
            backlogged.capacity,
            100.0 * backlogged.mean_occupancy,
            backlogged.photonic_mj_per_token,
            wide.capacity,
            wide.photonic_mj_per_token,
        )?;
        if self.trace_layer_evals == 0 {
            return writeln!(f, "eval cache: disabled (uncached A/B run)");
        }
        writeln!(
            f,
            "eval cache: {} mapping searches served {} photonic serving layer evaluations \
             ({:.1}% hit rate — steps dedupe by bucketed active-set composition)",
            self.trace_mapping_searches,
            self.trace_layer_evals,
            100.0 * self.trace_hit_rate(),
        )
    }
}

/// Runs the serving study: schedules every [`serving_mixes`] population
/// through every [`SERVING_CAPACITIES`] slot count and evaluates the
/// resulting step traces on the Albireo system at `scaling` and on the
/// digital baseline — all traces through one [`EvalSession`] per system,
/// so the whole study's mapping-search cost is bounded by the distinct
/// bucketed step compositions it visits, not its step count.
///
/// This is the regime the ROADMAP's "batched serving" gap names: decode
/// GEMVs (PR 4's worst case for photonic utilization) under realistic
/// admission/retirement dynamics, where the batch lever photonics need
/// is only available when the scheduler can keep slots occupied.
pub fn serving_study(scaling: ScalingProfile) -> Result<ServingStudyResult, SystemError> {
    use crate::DigitalBaseline;
    use lumen_core::serving::serving_sweep;
    use lumen_workload::{BatchSchedule, ServingModel, ServingScenario};

    let photonic = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let digital = EvalSession::new(DigitalBaseline::new().build_system());
    let photonic_clock = photonic.system().arch().clock();
    let digital_clock = digital.system().arch().clock();
    let model = ServingModel::gpt2_small();
    let options = NetworkOptions::baseline();

    let before = photonic.cache_stats();
    let mut rows = Vec::new();
    for mix in serving_mixes() {
        for capacity in SERVING_CAPACITIES {
            let scenario = ServingScenario::builder(mix.clone(), capacity)
                .kv_bucket(SERVING_KV_BUCKET)
                .build()
                .expect("the closed-loop study's fixed parameters are valid");
            let schedule = BatchSchedule::build(scenario.mix(), scenario.capacity());
            let p = serving_sweep(&photonic, &model, &schedule, scenario.kv_bucket(), &options)?;
            let d = serving_sweep(&digital, &model, &schedule, scenario.kv_bucket(), &options)?;
            rows.push(ServingRow {
                mix: scenario.mix().name().to_string(),
                capacity,
                requests: scenario.mix().len(),
                steps: schedule.total_steps(),
                mean_occupancy: p.mean_occupancy(),
                vs: PhotonicVsDigital {
                    photonic_pj_per_mac: p.pj_per_mac(),
                    digital_pj_per_mac: d.pj_per_mac(),
                    photonic_utilization: p.average_utilization(),
                    digital_utilization: d.average_utilization(),
                },
                photonic_mj_per_token: p.pj_per_token() / 1e9,
                digital_mj_per_token: d.pj_per_token() / 1e9,
                photonic_tokens_per_s: p.tokens_per_second(photonic_clock),
                digital_tokens_per_s: d.tokens_per_second(digital_clock),
            });
        }
    }
    let after = photonic.cache_stats();

    Ok(ServingStudyResult {
        scaling,
        kv_bucket: SERVING_KV_BUCKET,
        rows,
        trace_layer_evals: (after.hits + after.misses) - (before.hits + before.misses),
        trace_mapping_searches: after.misses - before.misses,
    })
}

// ---------------------------------------------------------------------
// Serving SLO study — open-loop arrivals, admission policies, latency
// ---------------------------------------------------------------------

/// Decode slots of the SLO study's server — small on purpose, so the
/// open-loop scenarios actually queue and the admission policy matters.
pub const SLO_CAPACITY: usize = 4;

/// Prompt tokens prefilled per admission event. One bucket wide: a
/// short prompt prefills in one step, a long-document prompt in two,
/// and the chunked attend lengths land on the same buckets the decode
/// path uses.
pub const SLO_PREFILL_CHUNK: usize = 256;

/// The SLO study's request population: chat traffic with a 25%
/// admixture of long-document requests — the mix where admission order
/// matters, because a long prompt parks two prefill steps in front of
/// whatever queues behind it.
pub fn slo_mix() -> lumen_workload::RequestMix {
    lumen_workload::RequestMix::bimodal(0x510_CAFE, 12, (64, 16), (512, 48), 25)
}

/// The SLO-aware policy the study exercises: requests with prompts up
/// to 128 tokens are interactive with a 16-step queueing budget,
/// everything else is batch at 4x that.
pub fn slo_policy() -> lumen_workload::AdmissionPolicy {
    lumen_workload::AdmissionPolicy::SloAware {
        interactive_prompt: 128,
        slack: 16,
    }
}

/// The single construction path for the SLO study's serving
/// description: the [`slo_mix`] population through [`SLO_CAPACITY`]
/// decode slots with [`SLO_PREFILL_CHUNK`]-token chunked prefill and
/// [`SERVING_KV_BUCKET`]-token bucketed residency, under the given
/// arrival process and admission policy. The CLI, the study drivers and
/// the fleet templates all build their scenarios here (or through the
/// paged sibling [`try_paged_slo_scenario`]), so flag combinations are
/// validated exactly once, by [`ServingScenarioBuilder::build`].
///
/// [`ServingScenarioBuilder::build`]: lumen_workload::ServingScenarioBuilder::build
pub fn slo_scenario(
    arrival: lumen_workload::ArrivalProcess,
    policy: lumen_workload::AdmissionPolicy,
) -> lumen_workload::ServingScenario {
    lumen_workload::ServingScenario::builder(slo_mix(), SLO_CAPACITY)
        .kv_bucket(SERVING_KV_BUCKET)
        .arrival(arrival)
        .policy(policy)
        .prefill_chunk(SLO_PREFILL_CHUNK)
        .build()
        .expect("the SLO study's fixed parameters are valid under every arrival and policy")
}

/// The (arrival, policy) scenarios of [`serving_slo_study`]: the
/// closed-loop saturation baseline, an underloaded and an overloaded
/// Poisson regime (the server drains ~0.16 requests/step at this mix),
/// the overloaded regime under both non-FIFO policies, and a bursty
/// process under the SLO policy.
pub fn slo_scenarios() -> Vec<(
    lumen_workload::ArrivalProcess,
    lumen_workload::AdmissionPolicy,
)> {
    use lumen_workload::{AdmissionPolicy, ArrivalProcess};
    vec![
        (ArrivalProcess::ClosedLoop, AdmissionPolicy::Fifo),
        (
            ArrivalProcess::poisson(0.1, 0xFEED_F00D),
            AdmissionPolicy::Fifo,
        ),
        (
            ArrivalProcess::poisson(0.5, 0xFEED_F00D),
            AdmissionPolicy::Fifo,
        ),
        (
            ArrivalProcess::poisson(0.5, 0xFEED_F00D),
            AdmissionPolicy::ShortestPrompt,
        ),
        (ArrivalProcess::poisson(0.5, 0xFEED_F00D), slo_policy()),
        (
            ArrivalProcess::bursty(0.02, 48, 6, 0xB125_7EED),
            slo_policy(),
        ),
    ]
}

/// One (arrival, policy) operating point of the SLO study.
#[derive(Debug, Clone)]
pub struct SloRow {
    /// The arrival process's display name.
    pub arrival: String,
    /// The admission policy's display name.
    pub policy: String,
    /// Requests served.
    pub requests: usize,
    /// Busy scheduler steps until the last request retired.
    pub steps: usize,
    /// Mean slot occupancy (prefill + decode) over the busy steps.
    pub mean_occupancy: f64,
    /// Prompt tokens prefilled — charged, not free.
    pub prefill_tokens: u64,
    /// Photonic time-to-first-token percentiles, seconds.
    pub photonic_ttft: lumen_core::Percentiles,
    /// Photonic time-between-tokens percentiles, seconds.
    pub photonic_tbt: lumen_core::Percentiles,
    /// Digital time-to-first-token percentiles, seconds.
    pub digital_ttft: lumen_core::Percentiles,
    /// Energy per MAC and utilization on both systems over the trace.
    pub vs: PhotonicVsDigital,
    /// Photonic energy per generated token, in millijoules.
    pub photonic_mj_per_token: f64,
    /// Digital energy per generated token, in millijoules.
    pub digital_mj_per_token: f64,
    /// Photonic aggregate serving throughput, generated tokens/s.
    pub photonic_tokens_per_s: f64,
    /// Digital aggregate serving throughput, generated tokens/s.
    pub digital_tokens_per_s: f64,
}

impl SloRow {
    /// Photonic energy advantage (>1 favors photonics).
    pub fn energy_advantage(&self) -> f64 {
        self.vs.energy_advantage()
    }
}

/// The serving SLO study: photonic vs digital GPT-2 small serving
/// under open-loop load, with prefill charged on admission and the
/// latency outputs serving actually buys — TTFT/TBT percentiles in
/// real time at each system's clock.
#[derive(Debug, Clone)]
pub struct SloStudyResult {
    /// The photonic system's scaling corner.
    pub scaling: ScalingProfile,
    /// The KV bucket steps were lowered with.
    pub kv_bucket: usize,
    /// Decode slots of every scenario.
    pub capacity: usize,
    /// Prompt tokens prefilled per admission event.
    pub prefill_chunk: usize,
    /// One row per (arrival, policy) scenario, in scenario order.
    pub rows: Vec<SloRow>,
    /// Layer evaluations the photonic traces requested.
    pub trace_layer_evals: u64,
    /// Mapping searches those evaluations actually cost (cache misses).
    pub trace_mapping_searches: u64,
}

impl SloStudyResult {
    /// The row for a given arrival and policy display name, if the
    /// study ran that scenario.
    pub fn row(&self, arrival: &str, policy: &str) -> Option<&SloRow> {
        self.rows
            .iter()
            .find(|r| r.arrival == arrival && r.policy == policy)
    }

    /// Fraction of the study's photonic layer evaluations answered
    /// from the cache.
    pub fn trace_hit_rate(&self) -> f64 {
        if self.trace_layer_evals == 0 {
            return 0.0;
        }
        1.0 - self.trace_mapping_searches as f64 / self.trace_layer_evals as f64
    }

    /// Renders the study as a table. Latency cells are
    /// `p50/p95/p99` (TTFT) and `p50/p99` (TBT) in milliseconds.
    pub fn table(&self) -> Table {
        let ms = |s: f64| 1e3 * s;
        let mut t = Table::new(vec![
            "arrival".into(),
            "policy".into(),
            "steps".into(),
            "occupancy".into(),
            "prefill tok".into(),
            "photonic ttft ms".into(),
            "photonic tbt ms".into(),
            "digital ttft ms".into(),
            "photonic tok/s".into(),
            "photonic mJ/tok".into(),
            "energy adv".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.arrival.clone(),
                row.policy.clone(),
                row.steps.to_string(),
                format!("{:.0}%", 100.0 * row.mean_occupancy),
                row.prefill_tokens.to_string(),
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    ms(row.photonic_ttft.p50),
                    ms(row.photonic_ttft.p95),
                    ms(row.photonic_ttft.p99)
                ),
                format!(
                    "{:.2}/{:.2}",
                    ms(row.photonic_tbt.p50),
                    ms(row.photonic_tbt.p99)
                ),
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    ms(row.digital_ttft.p50),
                    ms(row.digital_ttft.p95),
                    ms(row.digital_ttft.p99)
                ),
                format!("{:.0}", row.photonic_tokens_per_s),
                format!("{:.2}", row.photonic_mj_per_token),
                format!("{:.2}x", row.energy_advantage()),
            ]);
        }
        t
    }
}

impl fmt::Display for SloStudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Serving SLO study — GPT-2 small under open-loop load, photonic ({}) vs digital \
             baseline ({} slots, kv bucket {}, prefill chunk {})",
            self.scaling, self.capacity, self.kv_bucket, self.prefill_chunk
        )?;
        write!(f, "{}", self.table().render())?;
        let overload = ArrivalProcessLabel::OVERLOAD;
        if let (Some(fifo), Some(slo)) = (
            self.row(overload, "fifo"),
            self.row(overload, &slo_policy().to_string()),
        ) {
            writeln!(
                f,
                "admission lever ({overload}): fifo p50 TTFT {:.1} ms -> slo {:.1} ms photonic \
                 (interactive prompts jump the backlog; batch p99 {:.1} -> {:.1} ms)",
                1e3 * fifo.photonic_ttft.p50,
                1e3 * slo.photonic_ttft.p50,
                1e3 * fifo.photonic_ttft.p99,
                1e3 * slo.photonic_ttft.p99,
            )?;
        }
        if let Some(row) = self.rows.first() {
            writeln!(
                f,
                "prefill charged on admission: {} prompt tokens per scenario lowered through \
                 the dense path in {}-token chunks (the closed-loop study admitted them free)",
                row.prefill_tokens, self.prefill_chunk
            )?;
        }
        if self.trace_layer_evals == 0 {
            return writeln!(f, "eval cache: disabled (uncached A/B run)");
        }
        writeln!(
            f,
            "eval cache: {} mapping searches served {} photonic serving layer evaluations \
             ({:.1}% hit rate — decode groups and prefill chunks dedupe by bucketed length)",
            self.trace_mapping_searches,
            self.trace_layer_evals,
            100.0 * self.trace_hit_rate(),
        )
    }
}

/// The display label of the overloaded Poisson scenario, shared by the
/// Display footer and the tests.
struct ArrivalProcessLabel;

impl ArrivalProcessLabel {
    const OVERLOAD: &'static str = "poisson(r0.5,sfeedf00d)";
}

/// Runs [`serving_slo_study`] over an explicit scenario list — the CLI
/// uses this to run a single user-chosen (arrival, policy) pair.
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
pub fn serving_scenario_study(
    scaling: ScalingProfile,
    scenarios: &[(
        lumen_workload::ArrivalProcess,
        lumen_workload::AdmissionPolicy,
    )],
) -> Result<SloStudyResult, SystemError> {
    use crate::DigitalBaseline;
    use lumen_core::scenario_trace;
    use lumen_workload::ServingModel;

    let photonic = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let digital = EvalSession::new(DigitalBaseline::new().build_system());
    let photonic_clock = photonic.system().arch().clock();
    let digital_clock = digital.system().arch().clock();
    let model = ServingModel::gpt2_small();
    let options = NetworkOptions::baseline();

    let before = photonic.cache_stats();
    let mut rows = Vec::new();
    for (arrival, policy) in scenarios {
        let scenario = slo_scenario(arrival.clone(), *policy);
        let schedule = scenario.schedule();
        let p = scenario_trace(&photonic, &model, &scenario, &options)?;
        let d = scenario_trace(&digital, &model, &scenario, &options)?;
        rows.push(SloRow {
            arrival: arrival.to_string(),
            policy: policy.to_string(),
            requests: scenario.mix().len(),
            steps: schedule.total_steps(),
            mean_occupancy: schedule.mean_occupancy(),
            prefill_tokens: p.total_prefill_tokens(),
            photonic_ttft: p.ttft_percentiles(photonic_clock),
            photonic_tbt: p.tbt_percentiles(photonic_clock),
            digital_ttft: d.ttft_percentiles(digital_clock),
            vs: PhotonicVsDigital {
                photonic_pj_per_mac: p.pj_per_mac(),
                digital_pj_per_mac: d.pj_per_mac(),
                photonic_utilization: p.average_utilization(),
                digital_utilization: d.average_utilization(),
            },
            photonic_mj_per_token: p.pj_per_token() / 1e9,
            digital_mj_per_token: d.pj_per_token() / 1e9,
            photonic_tokens_per_s: p.tokens_per_second(photonic_clock),
            digital_tokens_per_s: d.tokens_per_second(digital_clock),
        });
    }
    let after = photonic.cache_stats();

    Ok(SloStudyResult {
        scaling,
        kv_bucket: SERVING_KV_BUCKET,
        capacity: SLO_CAPACITY,
        prefill_chunk: SLO_PREFILL_CHUNK,
        rows,
        trace_layer_evals: (after.hits + after.misses) - (before.hits + before.misses),
        trace_mapping_searches: after.misses - before.misses,
    })
}

/// Runs the serving SLO study over all [`slo_scenarios`]: the same
/// bimodal population through a 4-slot server under closed-loop,
/// Poisson (under- and over-loaded), and bursty arrivals, with FIFO,
/// shortest-prompt and SLO-aware admission — prefill charged on
/// admission everywhere. This is the question the closed-loop serving
/// study could not ask: not "how much does a token cost at
/// saturation?" but "what latency does a request see under load, and
/// what does the admission policy buy?".
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
pub fn serving_slo_study(scaling: ScalingProfile) -> Result<SloStudyResult, SystemError> {
    serving_scenario_study(scaling, &slo_scenarios())
}

// ---------------------------------------------------------------------
// Paged KV study — exact page residency and prefix sharing vs buckets
// ---------------------------------------------------------------------

/// The KV page the paged study allocates cache in: one sixteenth of
/// [`SERVING_KV_BUCKET`], so every bucketed attend length is also a
/// whole number of pages and the bucketed trace is a sound upper bound
/// on the paged one.
pub const PAGED_KV_PAGE: usize = 16;

/// The shared system-prompt prefix of the paged study's mix, in
/// tokens. Deliberately *not* page-aligned (40 = 2 full pages + 8
/// tokens): the trailing 8 tokens land on a partial page every sharer
/// copies copy-on-write, so the study charges the CoW path, not just
/// the free full-page references.
pub const PAGED_SHARED_PREFIX: usize = 40;

/// One KV-residency configuration of the paged study.
#[derive(Debug, Clone)]
pub struct PagedServingRow {
    /// The configuration's display label, e.g. `paged(16)+shared(40)`.
    pub label: String,
    /// Scheduler steps until the last request retired.
    pub steps: usize,
    /// Prompt tokens actually prefilled (prefix sharing shrinks this).
    pub prefill_tokens: u64,
    /// Generated tokens over the trace.
    pub tokens: u64,
    /// Total trace MACs, in GMACs.
    pub gmacs: f64,
    /// Backing-store (outermost level) accesses over the trace — the
    /// DRAM traffic the residency accounting actually changes.
    pub backing_accesses: f64,
    /// Photonic energy over the whole trace, in millijoules.
    pub photonic_total_mj: f64,
    /// Photonic energy per generated token, in millijoules.
    pub photonic_mj_per_token: f64,
    /// Allocated-but-unused KV fraction at the peak-allocation step.
    pub peak_waste: f64,
    /// Allocated − used cache tokens at the peak-allocation step.
    pub peak_fragmentation_tokens: u64,
}

/// The paged KV study: the same closed-loop GPT-2 small serving trace
/// on the photonic system under three KV-residency accountings —
/// legacy bucket padding, exact per-page allocation, and per-page
/// allocation with a shared prompt prefix stored once and referenced
/// copy-on-write.
///
/// `rows` is always ordered *bucketed, paged, paged+shared*.
#[derive(Debug, Clone)]
pub struct PagedServingStudyResult {
    /// The photonic system's scaling corner.
    pub scaling: ScalingProfile,
    /// The legacy bucket the baseline row pads to.
    pub kv_bucket: usize,
    /// Tokens per KV page of the paged rows.
    pub page: usize,
    /// Shared prompt-prefix tokens of the third row.
    pub shared_prefix: usize,
    /// Decode slots of the scheduler.
    pub capacity: usize,
    /// Prompt tokens prefilled per admission event.
    pub prefill_chunk: usize,
    /// Requests in the mix.
    pub requests: usize,
    /// The rows, ordered bucketed / paged / paged+shared.
    pub rows: Vec<PagedServingRow>,
    /// Layer evaluations the photonic traces requested.
    pub trace_layer_evals: u64,
    /// Mapping searches those evaluations actually cost (cache misses).
    pub trace_mapping_searches: u64,
}

impl PagedServingStudyResult {
    /// The bucket-padded baseline row.
    pub fn bucketed(&self) -> &PagedServingRow {
        &self.rows[0]
    }

    /// The exact-page-residency row (no prefix sharing).
    pub fn paged(&self) -> &PagedServingRow {
        &self.rows[1]
    }

    /// The paged row with the shared prompt prefix.
    pub fn paged_shared(&self) -> &PagedServingRow {
        &self.rows[2]
    }

    /// Fraction of the bucketed baseline's backing-store accesses the
    /// exact page residency eliminates, in `[0, 1)` — the measured
    /// bucket-vs-paged DRAM delta.
    pub fn dram_delta(&self) -> f64 {
        1.0 - self.paged().backing_accesses / self.bucketed().backing_accesses
    }

    /// Prompt tokens prefix sharing removed from the prefill path:
    /// every sharer after the owner skips the shared prefix.
    pub fn prefix_prefill_token_savings(&self) -> u64 {
        self.paged().prefill_tokens - self.paged_shared().prefill_tokens
    }

    /// Fractional MAC savings of prefix sharing over the paged row.
    pub fn prefix_mac_savings(&self) -> f64 {
        1.0 - self.paged_shared().gmacs / self.paged().gmacs
    }

    /// Fractional photonic-energy savings of prefix sharing over the
    /// paged row (net of the copy-on-write charge).
    pub fn prefix_energy_savings(&self) -> f64 {
        1.0 - self.paged_shared().photonic_total_mj / self.paged().photonic_total_mj
    }

    /// Fraction of the study's photonic layer evaluations answered
    /// from the cache.
    pub fn trace_hit_rate(&self) -> f64 {
        if self.trace_layer_evals == 0 {
            return 0.0;
        }
        1.0 - self.trace_mapping_searches as f64 / self.trace_layer_evals as f64
    }

    /// Renders the study as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "kv residency".into(),
            "steps".into(),
            "prefill tok".into(),
            "GMACs".into(),
            "backing acc".into(),
            "total mJ".into(),
            "mJ/tok".into(),
            "peak waste".into(),
            "frag tok".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                row.steps.to_string(),
                row.prefill_tokens.to_string(),
                format!("{:.1}", row.gmacs),
                format!("{:.3}G", row.backing_accesses / 1e9),
                format!("{:.1}", row.photonic_total_mj),
                format!("{:.2}", row.photonic_mj_per_token),
                format!("{:.1}%", 100.0 * row.peak_waste),
                row.peak_fragmentation_tokens.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for PagedServingStudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Paged KV study — GPT-2 small serving on the photonic system ({}), bucket {} vs \
             page {} ({} slots, prefill chunk {}, shared prefix {})",
            self.scaling,
            self.kv_bucket,
            self.page,
            self.capacity,
            self.prefill_chunk,
            self.shared_prefix
        )?;
        write!(f, "{}", self.table().render())?;
        writeln!(
            f,
            "paged residency: backing-store accesses {:.3}G -> {:.3}G (-{:.1}% vs bucket {}; \
             peak KV waste {:.1}% -> {:.1}%)",
            self.bucketed().backing_accesses / 1e9,
            self.paged().backing_accesses / 1e9,
            100.0 * self.dram_delta(),
            self.kv_bucket,
            100.0 * self.bucketed().peak_waste,
            100.0 * self.paged().peak_waste,
        )?;
        writeln!(
            f,
            "prefix sharing ({} tokens): prefill {} -> {} tokens (-{}), MACs -{:.2}%, \
             photonic energy -{:.2}% net of the {}-token copy-on-write tail",
            self.shared_prefix,
            self.paged().prefill_tokens,
            self.paged_shared().prefill_tokens,
            self.prefix_prefill_token_savings(),
            100.0 * self.prefix_mac_savings(),
            100.0 * self.prefix_energy_savings(),
            self.shared_prefix % self.page,
        )?;
        if self.trace_layer_evals == 0 {
            return writeln!(f, "eval cache: disabled (uncached A/B run)");
        }
        writeln!(
            f,
            "eval cache: {} mapping searches served {} photonic serving layer evaluations \
             ({:.1}% hit rate — page-residency variants still dedupe by signature)",
            self.trace_mapping_searches,
            self.trace_layer_evals,
            100.0 * self.trace_hit_rate(),
        )
    }
}

/// Runs the paged KV study at the default page and prefix
/// ([`PAGED_KV_PAGE`], [`PAGED_SHARED_PREFIX`]).
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
pub fn paged_serving_study(
    scaling: ScalingProfile,
) -> Result<PagedServingStudyResult, SystemError> {
    paged_serving_study_with(scaling, PAGED_KV_PAGE, PAGED_SHARED_PREFIX)
}

/// The paged scenario the study and the CLI's `--kv-page` path build:
/// [`slo_mix`] through [`SLO_CAPACITY`] closed-loop FIFO slots, paged
/// at `page` tokens with the first `shared` prompt tokens stored once
/// and referenced copy-on-write.
///
/// # Errors
///
/// The [`lumen_workload::ServingError`]s of scenario validation — a
/// zero page, or a prefix longer than the mix's shortest prompt.
pub fn try_paged_slo_scenario(
    page: usize,
    shared: usize,
) -> Result<lumen_workload::ServingScenario, lumen_workload::ServingError> {
    lumen_workload::ServingScenario::builder(slo_mix(), SLO_CAPACITY)
        .kv_bucket(SERVING_KV_BUCKET)
        .kv_page(page)
        .shared_prefix(shared)
        .prefill_chunk(SLO_PREFILL_CHUNK)
        .build()
}

/// [`paged_serving_study`] at an explicit page size and shared-prefix
/// length.
///
/// # Panics
///
/// If `page` is zero or `shared` exceeds the mix's shortest prompt —
/// the CLI constructs the scenario itself via [`try_paged_slo_scenario`]
/// and surfaces those as typed errors before calling in here.
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
pub fn paged_serving_study_with(
    scaling: ScalingProfile,
    page: usize,
    shared: usize,
) -> Result<PagedServingStudyResult, SystemError> {
    let scenario = try_paged_slo_scenario(page, shared)
        .expect("the paged study's page and shared-prefix must validate against the SLO mix");
    paged_serving_scenario_study(scaling, &scenario)
}

/// The paged KV study over one validated paged [`ServingScenario`] —
/// the scenario *is* the `paged(page)+shared(shared)` row, and the
/// study derives its bucketed and unshared siblings from the same
/// description (same requests, same scheduler knobs, only the KV
/// residency changed). Lowers all three on one photonic
/// [`EvalSession`], so identical steps dedupe in the shared cache.
///
/// # Panics
///
/// If the scenario is not paged (`kv_page` unset) — the flag parser
/// only produces paged scenarios for this path.
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
///
/// [`ServingScenario`]: lumen_workload::ServingScenario
pub fn paged_serving_scenario_study(
    scaling: ScalingProfile,
    scenario: &lumen_workload::ServingScenario,
) -> Result<PagedServingStudyResult, SystemError> {
    use lumen_core::serving::serving_trace_with;
    use lumen_workload::{PageTable, PrefillMode, RequestMix, ServingModel, ServingScenario};

    let page = scenario
        .kv_page()
        .expect("the paged study needs a paged scenario");
    let shared = scenario.shared_prefix();
    let bucket = scenario.kv_bucket();

    let photonic = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let model = ServingModel::gpt2_small();
    let options = NetworkOptions::baseline();

    // The bucketed baseline and the unshared paged row serve the same
    // requests with no prefix; rebuild them from the scenario with only
    // the residency knobs changed. The shared row is the scenario itself.
    let sibling = |kv_page: Option<usize>| -> ServingScenario {
        let base_mix =
            RequestMix::custom(scenario.mix().name(), scenario.mix().requests().to_vec());
        let mut builder = ServingScenario::builder(base_mix, scenario.capacity())
            .kv_bucket(bucket)
            .arrival(scenario.arrival().clone())
            .policy(scenario.policy())
            .prefill(scenario.prefill());
        if let Some(p) = kv_page {
            builder = builder.kv_page(p);
        }
        if let Some(max) = scenario.max_context() {
            builder = builder.max_context(max);
        }
        builder
            .build()
            .expect("a validated scenario's residency siblings are valid")
    };
    let bucketed = sibling(None);
    let paged = sibling(Some(page));

    // The bucketed baseline's residency is the same page-table walk at
    // page = bucket: allocation rounds to the bucket, which is exactly
    // what the padded lowering charges DRAM for.
    let page_table = |s: &ServingScenario| {
        s.layout()
            .page_table()
            .copied()
            .expect("paged scenarios carry a page table")
    };
    let variants: [(String, &ServingScenario, PageTable); 3] = [
        (
            format!("bucketed({bucket})"),
            &bucketed,
            PageTable::new(bucket),
        ),
        (format!("paged({page})"), &paged, page_table(&paged)),
        (
            format!("paged({page})+shared({shared})"),
            scenario,
            page_table(scenario),
        ),
    ];

    let before = photonic.cache_stats();
    let mut rows = Vec::new();
    for (label, variant, table) in &variants {
        let schedule = variant.schedule();
        let p = serving_trace_with(&photonic, &model, &schedule, variant.layout(), &options)?;
        let residency = table.schedule_residency(&schedule);
        rows.push(PagedServingRow {
            label: label.clone(),
            steps: schedule.total_steps(),
            prefill_tokens: p.total_prefill_tokens(),
            tokens: p.total_tokens(),
            gmacs: p.total_macs() as f64 / 1e9,
            backing_accesses: p.total_backing_accesses(),
            photonic_total_mj: p.total_energy().picojoules() / 1e9,
            photonic_mj_per_token: p.pj_per_token() / 1e9,
            peak_waste: residency.peak_waste_fraction(),
            peak_fragmentation_tokens: residency.peak_fragmentation_tokens(),
        });
    }
    let after = photonic.cache_stats();

    Ok(PagedServingStudyResult {
        scaling,
        kv_bucket: bucket,
        page,
        shared_prefix: shared,
        capacity: scenario.capacity(),
        prefill_chunk: match scenario.prefill() {
            PrefillMode::OnAdmission { chunk: Some(c) } => c,
            _ => 0,
        },
        requests: scenario.mix().len(),
        rows,
        trace_layer_evals: (after.hits + after.misses) - (before.hits + before.misses),
        trace_mapping_searches: after.misses - before.misses,
    })
}

// ---------------------------------------------------------------------
// Fleet study — capacity planning: N instances behind one router
// ---------------------------------------------------------------------

/// Instances the default `lumen fleet` run provisions — sized so the
/// default stream's offered load sits right at the fleet's aggregate
/// capacity (3 x [`SLO_CAPACITY`] decode slots).
pub const FLEET_INSTANCES: usize = 3;

/// The ceiling of the SLO search: [`fleet_slo_search`] sweeps instance
/// counts `1..=` this before giving up.
pub const FLEET_SEARCH_MAX_INSTANCES: usize = 6;

/// The fleet stream's request population: the SLO study's bimodal chat
/// shape, doubled to 24 requests so routing has something to balance.
pub fn fleet_mix() -> lumen_workload::RequestMix {
    lumen_workload::RequestMix::bimodal(0xF1EE_CAFE, 24, (64, 16), (512, 48), 25)
}

/// The default fleet arrival: an overloaded-for-one-instance Poisson
/// stream (0.5 requests/step against ~0.17 requests/step of
/// single-instance drain), so the capacity question has a non-trivial
/// answer.
pub fn fleet_arrival() -> lumen_workload::ArrivalProcess {
    lumen_workload::ArrivalProcess::poisson(0.5, 0xF1EE_F00D)
}

/// The per-instance template (and global stream description) of the
/// fleet studies: [`fleet_mix`] under `arrival`, each instance a
/// [`SLO_CAPACITY`]-slot scheduler with the SLO-aware admission policy
/// and chunked prefill — the same knobs as [`slo_scenario`], on the
/// bigger stream.
pub fn fleet_template(arrival: lumen_workload::ArrivalProcess) -> lumen_workload::ServingScenario {
    lumen_workload::ServingScenario::builder(fleet_mix(), SLO_CAPACITY)
        .kv_bucket(SERVING_KV_BUCKET)
        .arrival(arrival)
        .policy(slo_policy())
        .prefill_chunk(SLO_PREFILL_CHUNK)
        .build()
        .expect("the fleet template's fixed parameters are valid under every arrival")
}

/// One instance's slice of the capacity plan.
#[derive(Debug, Clone)]
pub struct FleetInstanceRow {
    /// Instance index, `0..N`.
    pub instance: usize,
    /// Requests the router assigned here.
    pub requests: usize,
    /// Busy scheduler steps until the instance's last request retired.
    pub steps: usize,
    /// Mean slot occupancy over the instance's trace (0.0 when idle).
    pub occupancy: f64,
    /// Tokens this instance generated.
    pub tokens: u64,
    /// Photonic energy this instance spent, in millijoules.
    pub total_mj: f64,
}

/// The fleet capacity plan: one routed arrival stream across N photonic
/// instances, with fleet-wide latency percentiles, throughput, energy
/// per token and the router's occupancy-balance report card.
#[derive(Debug, Clone)]
pub struct CapacityPlanResult {
    /// The photonic instances' scaling corner.
    pub scaling: ScalingProfile,
    /// The routing discipline.
    pub router: lumen_workload::FleetRouter,
    /// The arrival process's display name.
    pub arrival: String,
    /// The stream mix's display name.
    pub mix: String,
    /// Requests offered to the fleet.
    pub requests: usize,
    /// Decode slots per instance.
    pub capacity_per_instance: usize,
    /// Total decode slots across the fleet.
    pub aggregate_capacity: usize,
    /// One row per instance, by instance index.
    pub rows: Vec<FleetInstanceRow>,
    /// Fleet-wide time-to-first-token percentiles, seconds.
    pub ttft: lumen_core::Percentiles,
    /// Fleet-wide time-between-tokens percentiles, seconds.
    pub tbt: lumen_core::Percentiles,
    /// Fleet throughput: generated tokens per second of makespan.
    pub tokens_per_s: f64,
    /// Fleet energy per generated token, in millijoules.
    pub mj_per_token: f64,
    /// Max minus min per-instance mean occupancy.
    pub occupancy_skew: f64,
    /// Layer evaluations the fleet's traces requested (all instances
    /// share one photonic session).
    pub trace_layer_evals: u64,
    /// Mapping searches those evaluations actually cost (cache misses).
    pub trace_mapping_searches: u64,
}

impl CapacityPlanResult {
    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.rows.len()
    }

    /// Fleet-wide p99 time-to-first-token, in milliseconds — the number
    /// the SLO search judges a fleet by.
    pub fn p99_ttft_ms(&self) -> f64 {
        1e3 * self.ttft.p99
    }

    /// Fraction of the fleet's layer evaluations answered from the
    /// shared cache.
    pub fn trace_hit_rate(&self) -> f64 {
        if self.trace_layer_evals == 0 {
            return 0.0;
        }
        1.0 - self.trace_mapping_searches as f64 / self.trace_layer_evals as f64
    }

    /// Renders the per-instance table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "instance".into(),
            "requests".into(),
            "steps".into(),
            "occupancy".into(),
            "tokens".into(),
            "total mJ".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.instance.to_string(),
                row.requests.to_string(),
                row.steps.to_string(),
                format!("{:.0}%", 100.0 * row.occupancy),
                row.tokens.to_string(),
                format!("{:.1}", row.total_mj),
            ]);
        }
        t
    }
}

impl fmt::Display for CapacityPlanResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet capacity plan — {} requests ({}) routed {} across {} photonic instance(s) \
             ({}), {} slots/instance (aggregate {})",
            self.requests,
            self.arrival,
            self.router,
            self.instances(),
            self.scaling,
            self.capacity_per_instance,
            self.aggregate_capacity,
        )?;
        write!(f, "{}", self.table().render())?;
        let ms = |s: f64| 1e3 * s;
        writeln!(
            f,
            "fleet: TTFT p50/p95/p99 {:.1}/{:.1}/{:.1} ms, TBT p50/p99 {:.2}/{:.2} ms, \
             {:.0} tok/s, {:.2} mJ/token, occupancy skew {:.0}%",
            ms(self.ttft.p50),
            ms(self.ttft.p95),
            ms(self.ttft.p99),
            ms(self.tbt.p50),
            ms(self.tbt.p99),
            self.tokens_per_s,
            self.mj_per_token,
            100.0 * self.occupancy_skew,
        )?;
        if self.trace_layer_evals == 0 {
            return writeln!(f, "eval cache: disabled (uncached A/B run)");
        }
        writeln!(
            f,
            "eval cache: {} mapping searches served {} layer evaluations across the fleet \
             ({:.1}% hit rate — instances share one session, so identical shards dedupe)",
            self.trace_mapping_searches,
            self.trace_layer_evals,
            100.0 * self.trace_hit_rate(),
        )
    }
}

/// Runs the fleet capacity plan: routes [`fleet_mix`] under `arrival`
/// across `instances` copies of [`fleet_template`] with `router`, and
/// evaluates every instance through *one* photonic [`EvalSession`] —
/// identical steps on different instances dedupe by
/// [`lumen_workload::LayerSignature`] in the shared cache, so fleet
/// cost grows with distinct step shapes, not with N.
///
/// # Panics
///
/// If `instances` is zero — the CLI rejects that before calling in
/// (and `lumen check`'s L0408 flags it at pre-flight).
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
pub fn capacity_plan_study(
    scaling: ScalingProfile,
    instances: usize,
    router: lumen_workload::FleetRouter,
    arrival: lumen_workload::ArrivalProcess,
) -> Result<CapacityPlanResult, SystemError> {
    use lumen_core::{fleet_trace, FleetInstance};
    use lumen_workload::{Fleet, ServingModel};

    let template = fleet_template(arrival);
    let fleet = Fleet::uniform(template, router, instances);
    let assignments = fleet
        .dispatch()
        .expect("a uniform fleet serves any sub-stream of its own mix");

    let photonic = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let model = ServingModel::gpt2_small();
    let options = NetworkOptions::baseline();
    let members: Vec<FleetInstance<'_>> = assignments
        .iter()
        .map(|assignment| FleetInstance {
            session: &photonic,
            model: &model,
            assignment,
        })
        .collect();

    let before = photonic.cache_stats();
    let evaluation = fleet_trace(&members, &options)?;
    let after = photonic.cache_stats();

    let occupancies = evaluation.occupancies();
    let rows = evaluation
        .instances
        .iter()
        .map(|trace| FleetInstanceRow {
            instance: trace.instance,
            requests: trace.requests.len(),
            steps: trace.evaluation.as_ref().map_or(0, |e| e.points.len()),
            occupancy: occupancies[trace.instance],
            tokens: trace
                .evaluation
                .as_ref()
                .map_or(0, lumen_core::ServingEvaluation::total_tokens),
            total_mj: trace
                .evaluation
                .as_ref()
                .map_or(0.0, |e| e.total_energy().picojoules() / 1e9),
        })
        .collect();

    Ok(CapacityPlanResult {
        scaling,
        router,
        arrival: fleet.stream().arrival().to_string(),
        mix: fleet.stream().mix().name().to_string(),
        requests: fleet.stream().mix().len(),
        capacity_per_instance: SLO_CAPACITY,
        aggregate_capacity: fleet.aggregate_capacity(),
        rows,
        ttft: evaluation.ttft_percentiles(),
        tbt: evaluation.tbt_percentiles(),
        tokens_per_s: evaluation.tokens_per_second(),
        mj_per_token: evaluation.pj_per_token() / 1e9,
        occupancy_skew: evaluation.occupancy_skew(),
        trace_layer_evals: (after.hits + after.misses) - (before.hits + before.misses),
        trace_mapping_searches: after.misses - before.misses,
    })
}

/// One instance count probed by the SLO search.
#[derive(Debug, Clone)]
pub struct FleetSloRow {
    /// Instances provisioned.
    pub instances: usize,
    /// Fleet-wide p50 time-to-first-token, milliseconds.
    pub p50_ttft_ms: f64,
    /// Fleet-wide p99 time-to-first-token, milliseconds.
    pub p99_ttft_ms: f64,
    /// Fleet throughput, generated tokens/s.
    pub tokens_per_s: f64,
    /// Fleet energy per generated token, millijoules.
    pub mj_per_token: f64,
    /// Max minus min per-instance mean occupancy.
    pub occupancy_skew: f64,
    /// Whether this fleet met the SLO.
    pub met: bool,
}

/// The SLO search: the smallest fleet whose p99 TTFT meets the target.
#[derive(Debug, Clone)]
pub struct FleetSloSearchResult {
    /// The photonic instances' scaling corner.
    pub scaling: ScalingProfile,
    /// The p99 TTFT target, in milliseconds.
    pub slo_p99_ttft_ms: f64,
    /// The routing discipline.
    pub router: lumen_workload::FleetRouter,
    /// The arrival process's display name.
    pub arrival: String,
    /// The largest fleet the search was willing to provision.
    pub max_instances: usize,
    /// One row per probed instance count, ascending; the sweep stops at
    /// the first fleet that meets the SLO.
    pub rows: Vec<FleetSloRow>,
    /// The smallest instance count meeting the SLO, when one exists
    /// within `max_instances`.
    pub min_instances: Option<usize>,
}

impl FleetSloSearchResult {
    /// Renders the probed fleet sizes as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "instances".into(),
            "p50 ttft ms".into(),
            "p99 ttft ms".into(),
            "tok/s".into(),
            "mJ/tok".into(),
            "occ skew".into(),
            "meets slo".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.instances.to_string(),
                format!("{:.1}", row.p50_ttft_ms),
                format!("{:.1}", row.p99_ttft_ms),
                format!("{:.0}", row.tokens_per_s),
                format!("{:.2}", row.mj_per_token),
                format!("{:.0}%", 100.0 * row.occupancy_skew),
                if row.met { "yes" } else { "no" }.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for FleetSloSearchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet SLO search — smallest photonic fleet ({}) with p99 TTFT <= {:.0} ms, \
             router {}, arrival {}",
            self.scaling, self.slo_p99_ttft_ms, self.router, self.arrival,
        )?;
        write!(f, "{}", self.table().render())?;
        match self.min_instances {
            Some(n) => writeln!(
                f,
                "verdict: {n} instance(s) meet the {:.0} ms p99 TTFT target",
                self.slo_p99_ttft_ms
            ),
            None => writeln!(
                f,
                "verdict: no fleet up to {} instance(s) meets the {:.0} ms p99 TTFT target",
                self.max_instances, self.slo_p99_ttft_ms
            ),
        }
    }
}

/// Answers the capacity question: sweeps the instance count upward from
/// one, running [`capacity_plan_study`] at each size, until the
/// fleet-wide p99 TTFT meets `slo_p99_ttft_ms` (or the sweep hits
/// [`FLEET_SEARCH_MAX_INSTANCES`]).
///
/// # Errors
///
/// [`SystemError::NoMapping`] if any step has an unmappable layer.
pub fn fleet_slo_search(
    scaling: ScalingProfile,
    slo_p99_ttft_ms: f64,
    router: lumen_workload::FleetRouter,
    arrival: lumen_workload::ArrivalProcess,
) -> Result<FleetSloSearchResult, SystemError> {
    let mut rows = Vec::new();
    let mut min_instances = None;
    for instances in 1..=FLEET_SEARCH_MAX_INSTANCES {
        let plan = capacity_plan_study(scaling, instances, router, arrival.clone())?;
        let p99 = plan.p99_ttft_ms();
        let met = p99 <= slo_p99_ttft_ms;
        rows.push(FleetSloRow {
            instances,
            p50_ttft_ms: 1e3 * plan.ttft.p50,
            p99_ttft_ms: p99,
            tokens_per_s: plan.tokens_per_s,
            mj_per_token: plan.mj_per_token,
            occupancy_skew: plan.occupancy_skew,
            met,
        });
        if met {
            min_instances = Some(instances);
            break;
        }
    }
    Ok(FleetSloSearchResult {
        scaling,
        slo_p99_ttft_ms,
        router,
        arrival: fleet_template(arrival).arrival().to_string(),
        max_instances: FLEET_SEARCH_MAX_INSTANCES,
        rows,
        min_instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_validation_error_is_small() {
        let result = fig2_energy_breakdown().unwrap();
        assert_eq!(result.rows.len(), 3);
        assert!(
            result.average_error() < 0.015,
            "average error {:.3}% exceeds 1.5%",
            100.0 * result.average_error()
        );
        // Totals descend with scaling.
        assert!(result.rows[0].modeled_total() > result.rows[1].modeled_total());
        assert!(result.rows[1].modeled_total() > result.rows[2].modeled_total());
    }

    #[test]
    fn fig3_shapes_hold() {
        let result = fig3_throughput().unwrap();
        let vgg = &result.rows[0];
        let alex = &result.rows[1];
        assert!(
            vgg.modeled >= 0.85 * vgg.ideal,
            "VGG16 near ideal: {}",
            vgg.modeled
        );
        assert!(
            alex.modeled <= 0.45 * alex.ideal,
            "AlexNet far from ideal: {}",
            alex.modeled
        );
        assert!(alex.reported >= 0.9 * alex.ideal, "reported is near-ideal");
    }

    #[test]
    fn fig4_shapes_hold() {
        let result = fig4_memory_exploration().unwrap();
        assert_eq!(result.rows.len(), 8);
        // Aggressive baseline dominated by DRAM; conservative is not.
        let aggr = result.row(ScalingProfile::Aggressive, false, false);
        let cons = result.row(ScalingProfile::Conservative, false, false);
        assert!(
            aggr.dram_share() >= 0.60,
            "aggressive DRAM {:.2}",
            aggr.dram_share()
        );
        assert!(
            cons.dram_share() <= 0.30,
            "conservative DRAM {:.2}",
            cons.dram_share()
        );
        // Batching + fusion buy >= 55% at the aggressive corner (paper: 67%).
        let reduction = result.combined_reduction(ScalingProfile::Aggressive);
        assert!(reduction >= 0.55, "reduction {reduction:.2}");
        // Normalization anchors the baselines at 1.0.
        assert!((aggr.normalized_total - 1.0).abs() < 1e-12);
        assert!((cons.normalized_total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transformer_study_shapes_hold() {
        let result = transformer_study(ScalingProfile::Aggressive).unwrap();
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            // Aggressive photonics keep the energy edge on matmuls...
            assert!(
                row.energy_advantage() > 1.0,
                "{}: energy advantage {:.2}",
                row.network,
                row.energy_advantage()
            );
            // ...but the sliding-window fabric starves: the digital
            // array's utilization edge flips the throughput comparison.
            assert!(
                row.photonic_utilization < 0.2,
                "{}: photonic util {:.2}",
                row.network,
                row.photonic_utilization
            );
            assert!(row.digital_utilization > 0.5);
            assert!(
                row.throughput_advantage() < 1.0,
                "{}: throughput advantage {:.2}",
                row.network,
                row.throughput_advantage()
            );
            assert!(row.gemm_fraction > 0.9, "transformers are GEMM-bound");
        }
    }

    #[test]
    fn transformer_energy_edge_needs_scaling() {
        // At the conservative corner the conversion chain dominates and
        // the digital baseline wins energy on matmuls — the same crossover
        // logic as the paper's Fig. 2/4, now visible on a new workload.
        let cons = transformer_study(ScalingProfile::Conservative).unwrap();
        let aggr = transformer_study(ScalingProfile::Aggressive).unwrap();
        for name in networks::TRANSFORMER_NAMES {
            assert!(cons.row(name).energy_advantage() < 1.0, "{name}");
            assert!(aggr.row(name).energy_advantage() > 1.0, "{name}");
        }
    }

    #[test]
    fn decode_study_shapes_hold() {
        let result = decode_study(ScalingProfile::Aggressive).unwrap();
        assert_eq!(result.rows.len(), DECODE_KV_LENGTHS.len());
        for row in &result.rows {
            // The utilization collapse: seq-1 GEMVs idle the photonic
            // cluster fan-out (well under half the prefill utilization),
            // while the digital array barely notices.
            assert!(
                row.vs.photonic_utilization < 0.5 * result.prefill.photonic_utilization,
                "kv={}: photonic util {:.3} vs prefill {:.3}",
                row.kv_len,
                row.vs.photonic_utilization,
                result.prefill.photonic_utilization
            );
            assert!(row.vs.digital_utilization > 0.5, "kv={}", row.kv_len);
            // So the photonic/digital gap widens from prefill to decode.
            assert!(
                row.utilization_gap() > 2.0 * result.prefill.utilization_gap(),
                "kv={}: gap {:.1} vs prefill {:.1}",
                row.kv_len,
                row.utilization_gap(),
                result.prefill.utilization_gap()
            );
            // Decode is memory-bound: per-MAC energy an order of
            // magnitude above prefill for both systems (the KV cache is
            // read from DRAM in full every step).
            assert!(row.vs.photonic_pj_per_mac > 10.0 * result.prefill.photonic_pj_per_mac);
            assert!(row.vs.digital_pj_per_mac > 10.0 * result.prefill.digital_pj_per_mac);
            assert!(row.photonic_tokens_per_s > 0.0 && row.digital_tokens_per_s > 0.0);
        }
        // Per-token MACs grow monotonically with the cache.
        for pair in result.rows.windows(2) {
            assert!(pair[0].mmacs_per_token < pair[1].mmacs_per_token);
        }
        // The accessor answers every swept KV length.
        for kv in DECODE_KV_LENGTHS {
            assert_eq!(result.row(kv).kv_len, kv);
        }
        // The content-addressed sweep: 5 per-step networks x 97 layers
        // collapse to a handful of mapping searches.
        assert_eq!(result.trace_layer_evals, 5 * 97);
        assert!(
            result.trace_mapping_searches <= 14,
            "searches {}",
            result.trace_mapping_searches
        );
        assert!(result.trace_hit_rate() >= 0.9);
    }

    #[test]
    fn decode_collapses_the_aggressive_energy_edge() {
        // Prefill at the aggressive corner keeps photonics >2x ahead on
        // energy (the transformer study's result); decode erases the
        // edge — both systems drown in the same per-step KV-cache DRAM
        // traffic, and what remains of the comparison is near parity.
        let result = decode_study(ScalingProfile::Aggressive).unwrap();
        assert!(result.prefill.energy_advantage() > 2.0);
        for row in &result.rows {
            assert!(
                row.energy_advantage() < 1.2 && row.energy_advantage() > 0.8,
                "kv={}: advantage {:.2}",
                row.kv_len,
                row.energy_advantage()
            );
        }
    }

    /// The aggressive-corner serving study, computed once per test
    /// binary: both serving tests assert against it, and each run is 12
    /// full serving sweeps — exactly the wall-time class the smoke-suite
    /// satellite exists to keep in check.
    fn aggressive_serving_study() -> &'static ServingStudyResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<ServingStudyResult> = OnceLock::new();
        RESULT.get_or_init(|| serving_study(ScalingProfile::Aggressive).unwrap())
    }

    #[test]
    fn serving_study_shapes_hold() {
        let result = aggressive_serving_study();
        assert_eq!(
            result.rows.len(),
            serving_mixes().len() * SERVING_CAPACITIES.len()
        );
        for row in &result.rows {
            // The decode-regime utilization collapse survives continuous
            // batching: grouped seq-1 GEMVs still idle the photonic
            // cluster fan-out while the digital array stays busy.
            assert!(
                row.vs.photonic_utilization < 0.1,
                "{} cap {}: photonic util {:.3}",
                row.mix,
                row.capacity,
                row.vs.photonic_utilization
            );
            assert!(row.vs.digital_utilization > 0.5);
            assert!(
                row.utilization_gap() > 10.0,
                "{} cap {}: gap {:.1}",
                row.mix,
                row.capacity,
                row.utilization_gap()
            );
            // Energy sits near the decode parity the decode study pinned.
            assert!(
                row.energy_advantage() > 0.8 && row.energy_advantage() < 1.3,
                "{} cap {}: advantage {:.2}",
                row.mix,
                row.capacity,
                row.energy_advantage()
            );
            assert!(row.mean_occupancy > 0.0 && row.mean_occupancy <= 1.0 + 1e-12);
            assert!(row.photonic_tokens_per_s > 0.0 && row.digital_tokens_per_s > 0.0);
            assert!(row.steps > 0 && row.requests > 0);
        }
        // The occupancy lever: wider schedules batch larger groups, and
        // group batching never costs energy per token — on either system.
        for mix in serving_mixes() {
            let few = result.row(mix.name(), SERVING_CAPACITIES[0]);
            let many = result.row(mix.name(), SERVING_CAPACITIES[1]);
            assert!(
                many.photonic_mj_per_token <= few.photonic_mj_per_token,
                "{}: {:.2} vs {:.2} mJ/token photonic",
                mix.name(),
                many.photonic_mj_per_token,
                few.photonic_mj_per_token
            );
            assert!(many.digital_mj_per_token <= few.digital_mj_per_token);
        }
        // The content-addressed sweep: tens of thousands of step-layer
        // evaluations collapse to a few dozen mapping searches.
        assert!(
            result.trace_mapping_searches <= 100,
            "searches {}",
            result.trace_mapping_searches
        );
        assert!(result.trace_hit_rate() >= 0.99);
    }

    #[test]
    fn serving_keeps_the_decode_crossover() {
        // The transformer/decode crossover carries over to serving: the
        // conservative conversion chain loses to the digital baseline on
        // every mix, aggressive scaling keeps a (thin) photonic edge.
        let cons = serving_study(ScalingProfile::Conservative).unwrap();
        let aggr = aggressive_serving_study();
        assert_eq!(cons.rows.len(), aggr.rows.len());
        for (c, a) in cons.rows.iter().zip(&aggr.rows) {
            assert!(
                c.energy_advantage() < 1.0,
                "{} cap {}: conservative advantage {:.2}",
                c.mix,
                c.capacity,
                c.energy_advantage()
            );
            assert!(
                a.energy_advantage() > 1.0,
                "{} cap {}: aggressive advantage {:.2}",
                a.mix,
                a.capacity,
                a.energy_advantage()
            );
        }
    }

    /// The aggressive-corner SLO study, computed once per test binary
    /// — same wall-time discipline as [`aggressive_serving_study`].
    fn aggressive_slo_study() -> &'static SloStudyResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<SloStudyResult> = OnceLock::new();
        RESULT.get_or_init(|| serving_slo_study(ScalingProfile::Aggressive).unwrap())
    }

    #[test]
    fn slo_study_shapes_hold() {
        let result = aggressive_slo_study();
        assert_eq!(result.rows.len(), slo_scenarios().len());
        let prompt_tokens: u64 = slo_mix().requests().iter().map(|r| r.prompt as u64).sum();
        for row in &result.rows {
            // Prefill is charged once per request in every scenario.
            assert_eq!(row.prefill_tokens, prompt_tokens, "{}", row.arrival);
            // Latency percentiles are ordered and positive.
            let t = &row.photonic_ttft;
            assert!(
                t.p50 > 0.0 && t.p50 <= t.p95 && t.p95 <= t.p99,
                "{}",
                row.arrival
            );
            let b = &row.photonic_tbt;
            assert!(b.p50 > 0.0 && b.p50 <= b.p99);
            assert!(row.digital_ttft.p99 > 0.0);
            // The digital clock serves the same schedule faster.
            assert!(row.digital_ttft.p99 < row.photonic_ttft.p99);
            assert!(row.mean_occupancy > 0.0 && row.mean_occupancy <= 1.0 + 1e-12);
            assert!(row.photonic_tokens_per_s > 0.0 && row.digital_tokens_per_s > 0.0);
            // Prefill is dense work: it pulls the aggressive corner's
            // energy edge above the decode-parity floor.
            assert!(
                row.energy_advantage() > 1.0,
                "{} {}: advantage {:.2}",
                row.arrival,
                row.policy,
                row.energy_advantage()
            );
        }
        // Queueing shows: the overloaded regime has a worse TTFT tail
        // than the underloaded one under the same FIFO policy.
        let under = result.row("poisson(r0.1,sfeedf00d)", "fifo").unwrap();
        let over = result.row(ArrivalProcessLabel::OVERLOAD, "fifo").unwrap();
        assert!(
            over.photonic_ttft.p99 > under.photonic_ttft.p99,
            "overload p99 {:.4}s vs underload {:.4}s",
            over.photonic_ttft.p99,
            under.photonic_ttft.p99
        );
        // The admission lever: under overload, prioritizing short
        // prompts cuts the median TTFT vs FIFO.
        let slo = result
            .row(ArrivalProcessLabel::OVERLOAD, &slo_policy().to_string())
            .unwrap();
        assert!(
            slo.photonic_ttft.p50 < over.photonic_ttft.p50,
            "slo p50 {:.4}s vs fifo {:.4}s",
            slo.photonic_ttft.p50,
            over.photonic_ttft.p50
        );
        // Chunked prefill + bucketed decode keep the cache economics.
        assert!(
            result.trace_hit_rate() >= 0.95,
            "{:.3}",
            result.trace_hit_rate()
        );
    }

    #[test]
    fn slo_study_loses_the_edge_at_the_conservative_corner() {
        // Same crossover as every other study: the conservative
        // conversion chain hands the energy edge to the digital
        // baseline even with dense prefill in the trace.
        let result =
            serving_scenario_study(ScalingProfile::Conservative, &slo_scenarios()[..1]).unwrap();
        assert!(result.rows[0].energy_advantage() < 1.0);
    }

    /// The aggressive-corner paged study, computed once per test binary
    /// — same wall-time discipline as [`aggressive_serving_study`].
    fn aggressive_paged_study() -> &'static PagedServingStudyResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<PagedServingStudyResult> = OnceLock::new();
        RESULT.get_or_init(|| paged_serving_study(ScalingProfile::Aggressive).unwrap())
    }

    /// The paged-study invariants both scaling corners must satisfy —
    /// the ISSUE's acceptance bar verbatim: paged DRAM traffic bounded
    /// above by bucketed with a measured delta, and prefix sharing
    /// cutting prefill MACs and energy.
    fn assert_paged_study_invariants(result: &PagedServingStudyResult) {
        assert_eq!(result.rows.len(), 3);
        let (bucketed, paged, shared) = (result.bucketed(), result.paged(), result.paged_shared());
        // Rows 0 and 1 lower the *same* schedule: same steps, same
        // generated tokens, same prefilled prompt tokens.
        assert_eq!(bucketed.steps, paged.steps);
        assert_eq!(bucketed.tokens, paged.tokens);
        assert_eq!(bucketed.prefill_tokens, paged.prefill_tokens);
        // The soundness bound, strictly: 16 divides 256, so every paged
        // attend length is <= its bucketed padding, and the mixed-length
        // mix guarantees some step is genuinely shorter.
        assert!(
            paged.backing_accesses < bucketed.backing_accesses,
            "paged {:.3e} vs bucketed {:.3e}",
            paged.backing_accesses,
            bucketed.backing_accesses
        );
        assert!(paged.gmacs <= bucketed.gmacs);
        assert!(result.dram_delta() > 0.0 && result.dram_delta() < 1.0);
        // Exact allocation wastes less capacity than bucket padding.
        assert!(
            paged.peak_waste < bucketed.peak_waste,
            "waste {:.3} vs {:.3}",
            paged.peak_waste,
            bucketed.peak_waste
        );
        assert!(paged.peak_waste < PAGED_KV_PAGE as f64 / (PAGED_KV_PAGE + 1) as f64);
        // Prefix sharing: every sharer after the owner skips the shared
        // prefix, and the savings survive the copy-on-write charge.
        let sharers = (result.requests - 1) as u64;
        assert_eq!(
            result.prefix_prefill_token_savings(),
            sharers * PAGED_SHARED_PREFIX as u64
        );
        assert_eq!(shared.tokens, paged.tokens);
        assert!(shared.gmacs < paged.gmacs);
        assert!(
            shared.photonic_total_mj < paged.photonic_total_mj,
            "shared {:.1} mJ vs paged {:.1} mJ",
            shared.photonic_total_mj,
            paged.photonic_total_mj
        );
        assert!(result.prefix_mac_savings() > 0.0);
        assert!(result.prefix_energy_savings() > 0.0);
    }

    #[test]
    fn paged_study_shapes_hold() {
        let result = aggressive_paged_study();
        assert_paged_study_invariants(result);
        // The 40-token prefix is deliberately page-misaligned: 2 full
        // pages stored once plus an 8-token CoW tail per sharer.
        assert_eq!(PAGED_SHARED_PREFIX % PAGED_KV_PAGE, 8);
        // The content-addressed sweep survives paging: finer pages mean
        // more distinct attend lengths than the bucketed trace, but the
        // search count stays bounded by the unique signatures, not the
        // three traces' step count.
        assert!(result.trace_layer_evals > 0);
        assert!(
            result.trace_hit_rate() >= 0.9,
            "hit rate {:.3}",
            result.trace_hit_rate()
        );
    }

    #[test]
    fn paged_study_holds_at_the_conservative_corner() {
        // The residency accounting is system-independent arithmetic on
        // the same schedules; the DRAM and energy deltas must survive
        // the conversion-chain corner swap.
        let result = paged_serving_study(ScalingProfile::Conservative).unwrap();
        assert_paged_study_invariants(&result);
    }

    #[test]
    fn fig5_shapes_hold() {
        let result = fig5_reuse_exploration().unwrap();
        assert_eq!(result.rows.len(), 18);
        assert!(
            result.converter_reduction() >= 0.35,
            "converter reduction {:.2}",
            result.converter_reduction()
        );
        assert!(
            result.accelerator_reduction() >= 0.25,
            "accelerator reduction {:.2}",
            result.accelerator_reduction()
        );
        // More input reuse monotonically cuts input-conversion energy.
        let input_pj = |ir: usize| {
            result
                .rows
                .iter()
                .find(|r| {
                    r.weight_reuse == WeightReuse::Original
                        && r.output_reuse == 3
                        && r.input_reuse == ir
                })
                .unwrap()
                .segments_pj_per_mac[2]
        };
        assert!(input_pj(9) > input_pj(27));
        assert!(input_pj(27) > input_pj(45));
    }
}
