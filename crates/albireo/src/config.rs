//! The Albireo architecture generator.
//!
//! ## Calibration
//!
//! The ISPASS paper validates against Albireo's *reported* per-MAC energy
//! breakdown but does not reprint the raw device figures, so this model
//! back-derives physically-plausible per-device energies such that the
//! bottom-up evaluation of the best-case layer reproduces the reported
//! bars (see `reference`). All constants below are per *conservative*
//! scaling; the moderate/aggressive corners apply
//! [`ScalingProfile::factors`].
//!
//! | device | conservative value | rationale |
//! |---|---|---|
//! | MZM input modulator | 25.2 pJ/symbol | travelling-wave driver + 5 GS/s serializer chain |
//! | DAC (8-bit) | ~1.01 pJ/conv | capacitive-array DAC + driver |
//! | ADC (8-bit) | ~9.0 pJ/conv | high-speed SAR + input buffering |
//! | photodiode receive chain | 18.0 pJ/sample | PD + TIA + analog sample/hold |
//! | microring thermal tuning | 2.0 mW/ring | heater hold power |
//! | receiver sensitivity | −8.5 dBm | direct detection at 5 GS/s analog |
//! | DRAM | 20 pJ/bit | DDR4 device + PHY + controller |
//!
//! The laser is *computed* from an optical link budget (sensitivity +
//! splitting/insertion/propagation losses + margin, divided by wall-plug
//! efficiency), so architectures with more optical fan-out genuinely pay
//! more laser energy — the Fig. 5 tension.

use crate::dataflow::albireo_mapping;
use lumen_arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen_components::{
    Adc, Component, Dac, Dram, DramKind, LinkBudget, MachZehnder, Microring, ScalingProfile, Sram,
    StarCoupler, Waveguide,
};
use lumen_core::{MappingStrategy, System};
use lumen_units::{Decibel, Energy, Frequency, Power};
use lumen_workload::{Dim, DimSet, TensorKind, TensorSet};
use std::sync::Arc;

/// The `AE/AO Multiply*` block variant: how many optical multipliers share
/// one converted weight (the paper's Fig. 5 "Original" vs "More Weight
/// Reuse").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightReuse {
    /// The published Albireo: a 3-wide output-column window shares each
    /// weight.
    Original,
    /// A 9-wide window: each converted weight drives 3x the multipliers.
    More,
}

impl WeightReuse {
    /// The spatial sharing factor (output-column window width).
    pub fn factor(self) -> usize {
        match self {
            WeightReuse::Original => 3,
            WeightReuse::More => 9,
        }
    }
}

/// Generator for Albireo systems (accelerator + DRAM).
///
/// # Examples
///
/// ```
/// use lumen_albireo::{AlbireoConfig, ScalingProfile, WeightReuse};
///
/// let base = AlbireoConfig::new(ScalingProfile::Aggressive);
/// assert_eq!(base.peak_parallelism(), 5832);
///
/// let more_reuse = base
///     .clone()
///     .with_input_reuse(27)
///     .with_output_reuse(9)
///     .with_weight_reuse(WeightReuse::More);
/// assert!(more_reuse.peak_parallelism() > base.peak_parallelism());
/// ```
#[derive(Debug, Clone)]
pub struct AlbireoConfig {
    scaling: ScalingProfile,
    clusters: usize,
    input_reuse: usize,
    output_reuse: usize,
    weight_reuse: WeightReuse,
    kernel_rows: usize,
    kernel_cols: usize,
    glb_mebibytes: usize,
    dram: DramKind,
    clock: Frequency,
    word_bits: u32,
}

impl AlbireoConfig {
    /// The published Albireo configuration under the given scaling corner:
    /// 8 clusters, 9 PCU lanes sharing each modulated input (IR = 9),
    /// 3-way analog output accumulation (OR = 3), 3-wide weight-sharing
    /// window, 3×3 kernel fabric, 4 MiB global buffer, LPDDR4 DRAM, 5 GHz
    /// symbol rate.
    pub fn new(scaling: ScalingProfile) -> AlbireoConfig {
        AlbireoConfig {
            scaling,
            clusters: 8,
            input_reuse: 9,
            output_reuse: 3,
            weight_reuse: WeightReuse::Original,
            kernel_rows: 3,
            kernel_cols: 3,
            glb_mebibytes: 4,
            dram: DramKind::Ddr4,
            clock: Frequency::from_gigahertz(5.0),
            word_bits: 8,
        }
    }

    /// Sets IR: optical multipliers sharing one modulated input.
    #[must_use]
    pub fn with_input_reuse(mut self, ir: usize) -> AlbireoConfig {
        assert!(ir >= 1, "input reuse must be at least 1");
        self.input_reuse = ir;
        self
    }

    /// Sets OR: analog partial sums merged before one detector/ADC.
    #[must_use]
    pub fn with_output_reuse(mut self, or: usize) -> AlbireoConfig {
        assert!(or >= 1, "output reuse must be at least 1");
        self.output_reuse = or;
        self
    }

    /// Sets the weight-sharing window variant.
    #[must_use]
    pub fn with_weight_reuse(mut self, wr: WeightReuse) -> AlbireoConfig {
        self.weight_reuse = wr;
        self
    }

    /// Sets the global-buffer capacity (fusion studies enlarge it).
    #[must_use]
    pub fn with_glb_mebibytes(mut self, mib: usize) -> AlbireoConfig {
        assert!(mib >= 1, "global buffer must be at least 1 MiB");
        self.glb_mebibytes = mib;
        self
    }

    /// Sets the DRAM technology.
    #[must_use]
    pub fn with_dram(mut self, dram: DramKind) -> AlbireoConfig {
        self.dram = dram;
        self
    }

    /// The scaling corner.
    pub fn scaling(&self) -> ScalingProfile {
        self.scaling
    }

    /// IR: input-reuse factor.
    pub fn input_reuse(&self) -> usize {
        self.input_reuse
    }

    /// OR: output-reuse factor.
    pub fn output_reuse(&self) -> usize {
        self.output_reuse
    }

    /// The weight-reuse variant.
    pub fn weight_reuse(&self) -> WeightReuse {
        self.weight_reuse
    }

    /// The global-buffer capacity in MiB.
    pub fn glb_mebibytes(&self) -> usize {
        self.glb_mebibytes
    }

    /// Peak MACs per cycle of this configuration.
    pub fn peak_parallelism(&self) -> u64 {
        (self.clusters
            * self.weight_reuse.factor()
            * self.input_reuse
            * self.output_reuse
            * self.kernel_rows
            * self.kernel_cols) as u64
    }

    /// The optical link budget from one input modulator to one detector.
    pub fn link_budget(&self) -> LinkBudget {
        let factors = self.scaling.factors();
        // Direct (TIA-limited) detection at 5 GS/s needs ~-10 dBm at the
        // conservative corner; projected receivers improve with scaling.
        let sensitivity_dbm = match self.scaling {
            ScalingProfile::Conservative => -8.5,
            ScalingProfile::Moderate => -10.4,
            ScalingProfile::Aggressive => -14.1,
        };
        let splits = self.input_reuse * self.kernel_rows * self.kernel_cols;
        LinkBudget::new(Power::from_dbm(sensitivity_dbm))
            .with_loss(MachZehnder::new().insertion_loss())
            .with_loss(StarCoupler::new(splits).total_loss())
            .with_loss(Waveguide::new(10.0).propagation_loss())
            .with_loss(Microring::new().insertion_loss())
            .with_loss(Decibel::new(2.0)) // fiber-to-chip coupling
            .with_margin(Decibel::new(3.0))
            .with_wall_plug_efficiency(factors.laser_wall_plug_efficiency)
    }

    /// Builds the Albireo hierarchy.
    ///
    /// Levels, outermost → innermost (fan-out *below* each level):
    ///
    /// 1. `dram` — LPDDR4 backing store
    /// 2. `glb` — banked SRAM global buffer → 8 clusters over `{M, P}`
    /// 3. `weight-dac` (DE/AE, weights) → WR-wide column window over `{Q}`
    ///    (stride-1 only)
    /// 4. `input-dac` (DE/AE, inputs)
    /// 5. `input-mzm` (AE/AO, inputs) → IR PCU lanes over `{M}`
    /// 6. `output-adc` (AE/DE, outputs)
    /// 7. `output-pd` (AO/AE, outputs) → OR-way analog accumulation over
    ///    `{C}`
    /// 8. `star-coupler` (passive AO broadcast, inputs) → 3×3 kernel
    ///    positions over `{R, S}`
    /// 9. `pe` — the optical multiply (energy carried by laser + rings)
    pub fn build_arch(&self) -> Architecture {
        let f = self.scaling.factors();
        let clock = self.clock;

        // Digital memories (do not scale with optical projections).
        let dram = Dram::new(self.dram, self.word_bits);
        let glb_bits = self.glb_mebibytes as u64 * 1024 * 1024 * 8;
        let glb = Sram::new(glb_bits, 256)
            .with_banks(32)
            .with_energy_coefficients(4.0, 0.04);
        let glb_read = glb.read_energy_per_bit() * self.word_bits as f64;
        let glb_write = glb.write_energy_per_bit() * self.word_bits as f64;

        // Converters, calibrated per the module docs then scaled.
        let dac = Dac::new(self.word_bits);
        let dac_energy =
            dac.conversion_energy() * (1.0125 / dac.conversion_energy().picojoules()) * f.dac;
        let adc = Adc::new(self.word_bits);
        let adc_energy =
            adc.conversion_energy() * (9.0 / adc.conversion_energy().picojoules()) * f.adc;
        let mzm_energy = Energy::from_picojoules(25.2) * f.modulator;
        let pd_energy = Energy::from_picojoules(18.0) * f.detector;

        // Per-cycle photonic costs.
        let ring = Microring::new().with_tuning_power(Power::from_milliwatts(2.0 * f.tuning));
        let rings = self.peak_parallelism() as f64;
        let mrr_per_cycle = ring.hold_energy(clock) * rings;
        let modulators = (self.clusters * self.weight_reuse.factor()) as f64;
        let laser_per_cycle = self.link_budget().energy_per_symbol(clock) * modulators;

        ArchBuilder::new(format!("albireo-{}", self.scaling), clock)
            .word_bits(self.word_bits)
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(dram.access_energy())
            .write_energy(dram.access_energy())
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(glb_read)
            .write_energy(glb_write)
            .capacity_bits(glb_bits)
            .area(Component::area(&glb))
            .fanout(Fanout::new(self.clusters).allow(DimSet::from_dims(&[Dim::M, Dim::P])))
            .done()
            .converter(
                "weight-dac",
                Domain::AnalogElectrical,
                TensorSet::only(TensorKind::Weight),
            )
            .convert_energy(dac_energy)
            .area(dac.area())
            .fanout(
                Fanout::new(self.weight_reuse.factor())
                    .allow(DimSet::from_dims(&[Dim::Q]))
                    .require_unit_stride(DimSet::from_dims(&[Dim::Q])),
            )
            .done()
            .converter(
                "input-dac",
                Domain::AnalogElectrical,
                TensorSet::only(TensorKind::Input),
            )
            .convert_energy(dac_energy)
            .area(dac.area())
            .done()
            .converter(
                "input-mzm",
                Domain::AnalogOptical,
                TensorSet::only(TensorKind::Input),
            )
            .convert_energy(mzm_energy)
            .area(MachZehnder::new().area())
            .fanout(Fanout::new(self.input_reuse).allow(DimSet::from_dims(&[Dim::M])))
            .done()
            .converter(
                "output-adc",
                Domain::DigitalElectrical,
                TensorSet::only(TensorKind::Output),
            )
            .convert_energy(adc_energy)
            .area(adc.area())
            .done()
            .converter(
                "output-pd",
                Domain::AnalogElectrical,
                TensorSet::only(TensorKind::Output),
            )
            .convert_energy(pd_energy)
            .area(lumen_components::Photodiode::new().area())
            .fanout(Fanout::new(self.output_reuse).allow(DimSet::from_dims(&[Dim::C])))
            .done()
            .converter(
                "star-coupler",
                Domain::AnalogOptical,
                TensorSet::only(TensorKind::Input),
            )
            .convert_energy(Energy::ZERO) // passive broadcast
            .area(
                StarCoupler::new(self.input_reuse * self.kernel_rows * self.kernel_cols).area()
                    + Waveguide::new(10.0).area(),
            )
            // The kernel fabric parallelizes filter positions; for 1x1 /
            // fully-connected shapes its lanes can serve as extra analog
            // reduction over input channels instead.
            .fanout(
                Fanout::new(self.kernel_rows * self.kernel_cols).allow(DimSet::from_dims(&[
                    Dim::R,
                    Dim::S,
                    Dim::C,
                ])),
            )
            .done()
            // Idle lanes park their rings and power-gate their comb lines,
            // so both costs scale with the fraction of lanes in use.
            .per_cycle("mrr-tuning", mrr_per_cycle, true)
            .per_cycle("laser", laser_per_cycle, true)
            .compute("pe", Domain::AnalogOptical, Energy::ZERO)
            .build()
            .expect("albireo hierarchy is structurally valid")
    }

    /// Builds the system: the architecture coupled with the Albireo
    /// dataflow mapper.
    ///
    /// The mapper is a keyed custom strategy: its cache fingerprint
    /// hashes exactly the parameters the closure captures, so two
    /// systems built from equal configurations share evaluation-cache
    /// entries even though each call allocates a fresh closure.
    pub fn build_system(&self) -> System {
        let kernel = (self.kernel_rows, self.kernel_cols);
        let clusters = self.clusters;
        let ir = self.input_reuse;
        let or = self.output_reuse;
        let qwin = self.weight_reuse.factor();
        let key = lumen_workload::fnv1a(
            b"albireo-dataflow-v1",
            &[
                clusters as u64,
                qwin as u64,
                ir as u64,
                or as u64,
                kernel.0 as u64,
                kernel.1 as u64,
            ],
        );
        System::new(
            self.build_arch(),
            MappingStrategy::custom_keyed(
                key,
                Arc::new(move |arch, layer| {
                    albireo_mapping(arch, layer, clusters, qwin, ir, or, kernel)
                }),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuilt_systems_share_strategy_fingerprints() {
        // Keyed custom strategies: equal configs fingerprint equally
        // across separate `build_system` calls (each allocates a fresh
        // closure), so shared evaluation caches actually reuse entries;
        // a changed reuse knob changes the key.
        let a = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
        let b = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
        assert_eq!(a.strategy().fingerprint(), b.strategy().fingerprint());
        let c = AlbireoConfig::new(ScalingProfile::Aggressive)
            .with_input_reuse(27)
            .build_system();
        assert_ne!(a.strategy().fingerprint(), c.strategy().fingerprint());
    }

    #[test]
    fn base_structure() {
        let cfg = AlbireoConfig::new(ScalingProfile::Conservative);
        let arch = cfg.build_arch();
        assert_eq!(arch.levels().len(), 9);
        assert_eq!(arch.peak_parallelism(), 5832);
        assert_eq!(arch.peak_parallelism(), cfg.peak_parallelism());
        assert_eq!(arch.converter_levels().len(), 6);
    }

    #[test]
    fn reuse_knobs_change_peak() {
        let base = AlbireoConfig::new(ScalingProfile::Aggressive);
        let bigger = base
            .clone()
            .with_input_reuse(27)
            .with_output_reuse(9)
            .with_weight_reuse(WeightReuse::More);
        assert_eq!(
            bigger.peak_parallelism(),
            base.peak_parallelism() * 3 * 3 * 3
        );
    }

    #[test]
    fn scaling_reduces_converter_energies() {
        let cons = AlbireoConfig::new(ScalingProfile::Conservative).build_arch();
        let aggr = AlbireoConfig::new(ScalingProfile::Aggressive).build_arch();
        let conv = |a: &Architecture, name: &str| {
            a.level_named(name).expect("level exists").convert_energy()
        };
        for name in [
            "weight-dac",
            "input-dac",
            "input-mzm",
            "output-adc",
            "output-pd",
        ] {
            assert!(
                conv(&aggr, name) < conv(&cons, name),
                "{name} should shrink with aggressive scaling"
            );
        }
        // Digital memories do NOT scale.
        assert_eq!(
            cons.level_named("glb").unwrap().read_energy(),
            aggr.level_named("glb").unwrap().read_energy()
        );
    }

    #[test]
    fn laser_budget_grows_with_input_reuse() {
        let base = AlbireoConfig::new(ScalingProfile::Aggressive);
        let wide = base.clone().with_input_reuse(45);
        assert!(
            wide.link_budget().required_launch_power().watts()
                > base.link_budget().required_launch_power().watts(),
            "more optical splitting needs more laser power"
        );
    }

    #[test]
    fn conservative_mzm_energy_matches_calibration() {
        let arch = AlbireoConfig::new(ScalingProfile::Conservative).build_arch();
        let mzm = arch.level_named("input-mzm").unwrap().convert_energy();
        assert!((mzm.picojoules() - 25.2).abs() < 1e-9);
    }

    #[test]
    fn glb_capacity_set() {
        let arch = AlbireoConfig::new(ScalingProfile::Conservative)
            .with_glb_mebibytes(16)
            .build_arch();
        assert_eq!(
            arch.level_named("glb").unwrap().capacity_bits(),
            Some(16 * 1024 * 1024 * 8)
        );
    }
}
