//! Calibration diagnostics: print all four figure tables.
fn main() {
    println!(
        "{}",
        lumen_albireo::experiments::fig2_energy_breakdown().unwrap()
    );
    println!("{}", lumen_albireo::experiments::fig3_throughput().unwrap());
    println!(
        "{}",
        lumen_albireo::experiments::fig4_memory_exploration().unwrap()
    );
    println!(
        "{}",
        lumen_albireo::experiments::fig5_reuse_exploration().unwrap()
    );
}
