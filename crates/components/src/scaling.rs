//! Optical-device scaling projections.
//!
//! The Albireo paper (ISCA 2021) evaluates its photonic accelerator under
//! device-energy projections for future optical components; the ISPASS 2024
//! modeling paper validates against three of them. [`ScalingProfile`]
//! captures those corners as multipliers over the conservative (near-term)
//! device energies in this crate.

use std::fmt;

/// A named optical-technology corner.
///
/// # Examples
///
/// ```
/// use lumen_components::ScalingProfile;
/// let f = ScalingProfile::Aggressive.factors();
/// assert!(f.modulator < ScalingProfile::Conservative.factors().modulator);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalingProfile {
    /// Near-term devices (demonstrated energies).
    Conservative,
    /// Mid-term projections.
    Moderate,
    /// Long-term projections (every optical device at its projected floor).
    Aggressive,
}

impl ScalingProfile {
    /// All profiles, from least to most optimistic.
    pub const ALL: [ScalingProfile; 3] = [
        ScalingProfile::Conservative,
        ScalingProfile::Moderate,
        ScalingProfile::Aggressive,
    ];

    /// The device-energy multipliers of this corner.
    ///
    /// Digital components (SRAM, DRAM, NoC) do **not** scale — they are
    /// already mature — which is exactly why DRAM dominates the
    /// aggressively-scaled system in the paper's Fig. 4.
    pub fn factors(self) -> ScalingFactors {
        match self {
            ScalingProfile::Conservative => ScalingFactors {
                modulator: 1.0,
                tuning: 1.0,
                detector: 1.0,
                adc: 1.0,
                dac: 1.0,
                laser_wall_plug_efficiency: 0.10,
                detector_sensitivity_dbm: -20.0,
            },
            ScalingProfile::Moderate => ScalingFactors {
                modulator: 0.40,
                tuning: 0.40,
                detector: 0.45,
                adc: 0.42,
                dac: 0.42,
                laser_wall_plug_efficiency: 0.17,
                detector_sensitivity_dbm: -24.0,
            },
            ScalingProfile::Aggressive => ScalingFactors {
                modulator: 0.115,
                tuning: 0.12,
                detector: 0.15,
                adc: 0.145,
                dac: 0.15,
                laser_wall_plug_efficiency: 0.25,
                detector_sensitivity_dbm: -28.0,
            },
        }
    }
}

impl fmt::Display for ScalingProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalingProfile::Conservative => "conservative",
            ScalingProfile::Moderate => "moderate",
            ScalingProfile::Aggressive => "aggressive",
        };
        write!(f, "{s}")
    }
}

/// Multipliers applied to conservative device energies, plus absolute
/// laser/detector figures of merit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingFactors {
    /// MZM modulation-energy multiplier.
    pub modulator: f64,
    /// MRR thermal-tuning-power multiplier.
    pub tuning: f64,
    /// Photodiode/TIA detection-energy multiplier.
    pub detector: f64,
    /// ADC conversion-energy multiplier.
    pub adc: f64,
    /// DAC conversion-energy multiplier.
    pub dac: f64,
    /// Laser wall-plug efficiency (absolute, not a multiplier).
    pub laser_wall_plug_efficiency: f64,
    /// Detector sensitivity in dBm (absolute; lower = better).
    pub detector_sensitivity_dbm: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_monotonic() {
        let c = ScalingProfile::Conservative.factors();
        let m = ScalingProfile::Moderate.factors();
        let a = ScalingProfile::Aggressive.factors();
        for get in [
            |f: &ScalingFactors| f.modulator,
            |f: &ScalingFactors| f.tuning,
            |f: &ScalingFactors| f.detector,
            |f: &ScalingFactors| f.adc,
            |f: &ScalingFactors| f.dac,
        ] {
            assert!(get(&c) > get(&m) && get(&m) > get(&a), "multipliers shrink");
        }
        assert!(c.laser_wall_plug_efficiency < a.laser_wall_plug_efficiency);
        assert!(c.detector_sensitivity_dbm > a.detector_sensitivity_dbm);
    }

    #[test]
    fn conservative_is_identity_on_multipliers() {
        let f = ScalingProfile::Conservative.factors();
        for v in [f.modulator, f.tuning, f.detector, f.adc, f.dac] {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalingProfile::Aggressive.to_string(), "aggressive");
        assert_eq!(ScalingProfile::ALL.len(), 3);
    }
}
