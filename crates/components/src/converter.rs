//! Cross-domain data converters: ADC (AE/DE), DAC (DE/AE), sample-and-hold.
//!
//! Converter energy is the central cost the paper's mapper tries to
//! amortize: converting once and reusing the converted value in-domain
//! divides these energies by the reuse factor.

use crate::{ActionKind, Component};
use lumen_units::{Area, Energy};

/// An analog-to-digital converter (the `AE/DE` crossing).
///
/// Energy model follows the survey-style fit used by "Modeling
/// analog-digital-converter energy and area for compute-in-memory
/// accelerator design" (Andrulis et al., 2024): a linear term for the
/// comparator/logic plus an exponential term for the capacitive DAC /
/// noise floor:
///
/// `E = k1·bits + k2·4^bits`
///
/// Defaults give ≈1 pJ for an 8-bit conversion (a competitive SAR ADC).
///
/// # Examples
///
/// ```
/// use lumen_components::Adc;
/// let adc8 = Adc::new(8);
/// let adc10 = Adc::new(10);
/// assert!(adc10.conversion_energy() > 4.0 * adc8.conversion_energy());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adc {
    bits: u32,
    k1_fj: f64,
    k2_fj: f64,
    scale: f64,
}

impl Adc {
    /// Builds an ADC of `bits` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: u32) -> Adc {
        assert!(bits > 0, "ADC resolution must be nonzero");
        Adc {
            bits,
            k1_fj: 30.0,
            k2_fj: 0.012,
            scale: 1.0,
        }
    }

    /// Overrides the fit coefficients (fJ linear term, fJ exponential term).
    #[must_use]
    pub fn with_coefficients(mut self, k1_fj: f64, k2_fj: f64) -> Adc {
        self.k1_fj = k1_fj;
        self.k2_fj = k2_fj;
        self
    }

    /// Scales the total conversion energy (technology-projection hook).
    #[must_use]
    pub fn with_energy_scale(mut self, scale: f64) -> Adc {
        self.scale = scale;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Energy of one conversion.
    pub fn conversion_energy(&self) -> Energy {
        let e = self.k1_fj * self.bits as f64 + self.k2_fj * 4f64.powi(self.bits as i32);
        Energy::from_femtojoules(e * self.scale)
    }
}

impl Component for Adc {
    fn name(&self) -> String {
        format!("adc-{}b", self.bits)
    }

    fn area(&self) -> Area {
        // Comparator + capacitor array; grows with 2^bits.
        Area::from_square_micrometers(60.0 + 2.0 * 2f64.powi(self.bits as i32))
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Convert, self.conversion_energy())]
    }
}

/// A digital-to-analog converter (the `DE/AE` crossing).
///
/// Capacitive-array model: `E = k·2^bits·C_unit·V² + k_logic·bits`; an
/// 8-bit conversion defaults to ≈0.5 pJ.
///
/// # Examples
///
/// ```
/// use lumen_components::{Adc, Dac};
/// // DACs are cheaper than ADCs at equal resolution.
/// assert!(Dac::new(8).conversion_energy() < Adc::new(8).conversion_energy());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dac {
    bits: u32,
    array_fj: f64,
    logic_fj_per_bit: f64,
    scale: f64,
}

impl Dac {
    /// Builds a DAC of `bits` resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: u32) -> Dac {
        assert!(bits > 0, "DAC resolution must be nonzero");
        Dac {
            bits,
            array_fj: 1.6,
            logic_fj_per_bit: 10.0,
            scale: 1.0,
        }
    }

    /// Overrides the fit coefficients.
    #[must_use]
    pub fn with_coefficients(mut self, array_fj: f64, logic_fj_per_bit: f64) -> Dac {
        self.array_fj = array_fj;
        self.logic_fj_per_bit = logic_fj_per_bit;
        self
    }

    /// Scales the total conversion energy (technology-projection hook).
    #[must_use]
    pub fn with_energy_scale(mut self, scale: f64) -> Dac {
        self.scale = scale;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Energy of one conversion.
    pub fn conversion_energy(&self) -> Energy {
        let e =
            self.array_fj * 2f64.powi(self.bits as i32) + self.logic_fj_per_bit * self.bits as f64;
        Energy::from_femtojoules(e * self.scale)
    }
}

impl Component for Dac {
    fn name(&self) -> String {
        format!("dac-{}b", self.bits)
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(30.0 + 0.8 * 2f64.powi(self.bits as i32))
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Convert, self.conversion_energy())]
    }
}

/// A sample-and-hold stage that keeps an analog value alive so it can be
/// reused without reconversion (the analog-domain register).
///
/// # Examples
///
/// ```
/// use lumen_components::SampleAndHold;
/// let sh = SampleAndHold::new();
/// assert!(sh.sample_energy().femtojoules() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleAndHold {
    sample_fj: f64,
}

impl SampleAndHold {
    /// Builds a sample-and-hold with the default ~10 fJ sampling energy.
    pub fn new() -> SampleAndHold {
        SampleAndHold { sample_fj: 10.0 }
    }

    /// Overrides the per-sample energy in femtojoules.
    #[must_use]
    pub fn with_sample_energy_fj(mut self, fj: f64) -> SampleAndHold {
        self.sample_fj = fj;
        self
    }

    /// Energy to capture one analog sample.
    pub fn sample_energy(&self) -> Energy {
        Energy::from_femtojoules(self.sample_fj)
    }
}

impl Default for SampleAndHold {
    fn default() -> Self {
        SampleAndHold::new()
    }
}

impl Component for SampleAndHold {
    fn name(&self) -> String {
        "sample-and-hold".into()
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(25.0)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Write, self.sample_energy())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_8bit_is_pj_scale() {
        let e = Adc::new(8).conversion_energy();
        assert!(e.picojoules() > 0.3 && e.picojoules() < 3.0, "got {e}");
    }

    #[test]
    fn adc_energy_explodes_with_resolution() {
        // Each extra bit should roughly 4x the exponential term; by 12 bits
        // the exponential dominates.
        let e8 = Adc::new(8).conversion_energy();
        let e12 = Adc::new(12).conversion_energy();
        assert!(e12 > e8 * 20.0);
    }

    #[test]
    fn adc_scale_hook() {
        let base = Adc::new(8).conversion_energy();
        let scaled = Adc::new(8).with_energy_scale(0.1).conversion_energy();
        assert!((scaled / base - 0.1).abs() < 1e-12);
    }

    #[test]
    fn dac_cheaper_than_adc() {
        for bits in [4, 6, 8, 10] {
            assert!(
                Dac::new(bits).conversion_energy() < Adc::new(bits).conversion_energy(),
                "at {bits} bits"
            );
        }
    }

    #[test]
    fn dac_8bit_is_sub_pj() {
        let e = Dac::new(8).conversion_energy();
        assert!(e.picojoules() > 0.1 && e.picojoules() < 1.5, "got {e}");
    }

    #[test]
    fn sample_and_hold_is_cheap() {
        assert!(
            SampleAndHold::new().sample_energy() * 10.0 < Dac::new(8).conversion_energy(),
            "reusing an analog value must beat reconverting it"
        );
    }

    #[test]
    fn reports() {
        assert!(Adc::new(8).report().energy(ActionKind::Convert).is_some());
        assert!(Dac::new(8).report().energy(ActionKind::Convert).is_some());
        assert!(SampleAndHold::new()
            .report()
            .energy(ActionKind::Write)
            .is_some());
    }
}
