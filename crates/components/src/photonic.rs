//! Analog-optical components: modulators, resonators, detectors, couplers,
//! waveguides and light sources.
//!
//! Parameter defaults describe near-term silicon photonics (the paper's
//! "conservative" corner); the aggressive corners are reached through the
//! `with_*` calibration hooks or [`crate::ScalingProfile`] factors.

use crate::{ActionKind, Component};
use lumen_units::{Area, Decibel, Energy, Frequency, Power};

/// A microring resonator (MRR) weight element.
///
/// MRRs impose weights on optical carriers. Their dominant cost is
/// *thermal tuning*: static heater power that keeps the ring on resonance,
/// charged per clock cycle. Reprogramming the weight costs additional
/// dynamic energy per update.
///
/// # Examples
///
/// ```
/// use lumen_components::Microring;
/// use lumen_units::Frequency;
/// let mrr = Microring::new();
/// let per_cycle = mrr.hold_energy(Frequency::from_gigahertz(5.0));
/// assert!(per_cycle.femtojoules() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Microring {
    tuning_power: Power,
    update_energy: Energy,
    insertion_loss: Decibel,
}

impl Microring {
    /// Builds an MRR with ~0.8 mW thermal tuning and ~50 fJ weight updates.
    pub fn new() -> Microring {
        Microring {
            tuning_power: Power::from_milliwatts(0.8),
            update_energy: Energy::from_femtojoules(50.0),
            insertion_loss: Decibel::new(0.5),
        }
    }

    /// Overrides the resonance-tuning power.
    #[must_use]
    pub fn with_tuning_power(mut self, power: Power) -> Microring {
        self.tuning_power = power;
        self
    }

    /// Overrides the per-update (weight reprogram) energy.
    #[must_use]
    pub fn with_update_energy(mut self, energy: Energy) -> Microring {
        self.update_energy = energy;
        self
    }

    /// Overrides the through-path insertion loss.
    #[must_use]
    pub fn with_insertion_loss(mut self, loss: Decibel) -> Microring {
        self.insertion_loss = loss;
        self
    }

    /// Tuning energy charged for one clock cycle of operation.
    pub fn hold_energy(&self, clock: Frequency) -> Energy {
        self.tuning_power * clock.period()
    }

    /// Energy to reprogram the ring to a new weight.
    pub fn update_energy(&self) -> Energy {
        self.update_energy
    }

    /// Optical insertion loss of the through path.
    pub fn insertion_loss(&self) -> Decibel {
        self.insertion_loss
    }
}

impl Default for Microring {
    fn default() -> Self {
        Microring::new()
    }
}

impl Component for Microring {
    fn name(&self) -> String {
        "microring".into()
    }

    fn area(&self) -> Area {
        // ~10 µm radius ring plus heater.
        Area::from_square_micrometers(400.0)
    }

    fn static_power(&self) -> Power {
        self.tuning_power
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Write, self.update_energy)]
    }
}

/// A Mach-Zehnder modulator (MZM) imposing an electrical value on light.
///
/// Charged per modulated symbol; the default ~0.9 pJ/symbol describes a
/// driver + junction at near-term energies.
///
/// # Examples
///
/// ```
/// use lumen_components::MachZehnder;
/// let mzm = MachZehnder::new();
/// assert!(mzm.modulation_energy().picojoules() < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachZehnder {
    modulation_energy: Energy,
    insertion_loss: Decibel,
}

impl MachZehnder {
    /// Builds an MZM with ~0.9 pJ/symbol drive energy and 1.2 dB loss.
    pub fn new() -> MachZehnder {
        MachZehnder {
            modulation_energy: Energy::from_picojoules(0.9),
            insertion_loss: Decibel::new(1.2),
        }
    }

    /// Overrides the per-symbol modulation energy.
    #[must_use]
    pub fn with_modulation_energy(mut self, energy: Energy) -> MachZehnder {
        self.modulation_energy = energy;
        self
    }

    /// Overrides the insertion loss.
    #[must_use]
    pub fn with_insertion_loss(mut self, loss: Decibel) -> MachZehnder {
        self.insertion_loss = loss;
        self
    }

    /// Energy to modulate one symbol onto a carrier.
    pub fn modulation_energy(&self) -> Energy {
        self.modulation_energy
    }

    /// Optical insertion loss.
    pub fn insertion_loss(&self) -> Decibel {
        self.insertion_loss
    }
}

impl Default for MachZehnder {
    fn default() -> Self {
        MachZehnder::new()
    }
}

impl Component for MachZehnder {
    fn name(&self) -> String {
        "mach-zehnder".into()
    }

    fn area(&self) -> Area {
        // Travelling-wave MZMs are long: ~1 mm × 50 µm.
        Area::from_square_micrometers(50_000.0)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Convert, self.modulation_energy)]
    }
}

/// A photodiode plus transimpedance amplifier (the `AO/AE` crossing).
///
/// Charged per detected sample.
///
/// # Examples
///
/// ```
/// use lumen_components::Photodiode;
/// let pd = Photodiode::new();
/// assert!(pd.detection_energy().femtojoules() > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Photodiode {
    detection_energy: Energy,
    sensitivity: Power,
}

impl Photodiode {
    /// Builds a photodiode+TIA with ~150 fJ/sample and −20 dBm sensitivity.
    pub fn new() -> Photodiode {
        Photodiode {
            detection_energy: Energy::from_femtojoules(150.0),
            sensitivity: Power::from_dbm(-20.0),
        }
    }

    /// Overrides the per-sample detection (TIA) energy.
    #[must_use]
    pub fn with_detection_energy(mut self, energy: Energy) -> Photodiode {
        self.detection_energy = energy;
        self
    }

    /// Overrides the minimum detectable optical power.
    #[must_use]
    pub fn with_sensitivity(mut self, sensitivity: Power) -> Photodiode {
        self.sensitivity = sensitivity;
        self
    }

    /// Energy to detect one analog sample.
    pub fn detection_energy(&self) -> Energy {
        self.detection_energy
    }

    /// Minimum optical power required at the detector.
    pub fn sensitivity(&self) -> Power {
        self.sensitivity
    }
}

impl Default for Photodiode {
    fn default() -> Self {
        Photodiode::new()
    }
}

impl Component for Photodiode {
    fn name(&self) -> String {
        "photodiode".into()
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(200.0)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Convert, self.detection_energy)]
    }
}

/// A passive star coupler broadcasting one optical input to `fanout`
/// outputs.
///
/// Consumes no electrical energy but splits optical power: the fundamental
/// `10·log10(fanout)` dB division plus excess loss per stage. This loss is
/// what makes "more optical reuse" cost laser power — the paper's Fig. 5
/// tradeoff.
///
/// # Examples
///
/// ```
/// use lumen_components::StarCoupler;
/// let sc = StarCoupler::new(8);
/// assert!(sc.total_loss().db() > 9.0); // 9 dB split + excess
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StarCoupler {
    fanout: usize,
    excess_per_stage: Decibel,
}

impl StarCoupler {
    /// Builds a 1:`fanout` star coupler with 0.2 dB excess loss per stage.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn new(fanout: usize) -> StarCoupler {
        assert!(fanout > 0, "fanout must be nonzero");
        StarCoupler {
            fanout,
            excess_per_stage: Decibel::new(0.2),
        }
    }

    /// Overrides the excess loss per 1:2 stage.
    #[must_use]
    pub fn with_excess_loss(mut self, per_stage: Decibel) -> StarCoupler {
        self.excess_per_stage = per_stage;
        self
    }

    /// Number of output ports.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The fundamental power-splitting loss: `10·log10(fanout)` dB.
    pub fn splitting_loss(&self) -> Decibel {
        Decibel::from_linear(self.fanout as f64)
    }

    /// Excess (implementation) loss of the splitting tree.
    pub fn excess_loss(&self) -> Decibel {
        Decibel::per_split(self.excess_per_stage.db(), self.fanout)
    }

    /// Total loss from the input port to any single output port.
    pub fn total_loss(&self) -> Decibel {
        self.splitting_loss() + self.excess_loss()
    }
}

impl Component for StarCoupler {
    fn name(&self) -> String {
        format!("star-coupler-1x{}", self.fanout)
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(100.0 * self.fanout as f64)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        Vec::new() // passive
    }
}

/// A silicon waveguide segment.
///
/// # Examples
///
/// ```
/// use lumen_components::Waveguide;
/// let wg = Waveguide::new(10.0); // 10 mm
/// assert!((wg.propagation_loss().db() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveguide {
    length_mm: f64,
    loss_db_per_cm: f64,
}

impl Waveguide {
    /// Builds a waveguide of `length_mm` with 2 dB/cm propagation loss.
    ///
    /// # Panics
    ///
    /// Panics if `length_mm` is negative.
    pub fn new(length_mm: f64) -> Waveguide {
        assert!(length_mm >= 0.0, "length must be non-negative");
        Waveguide {
            length_mm,
            loss_db_per_cm: 2.0,
        }
    }

    /// Overrides the propagation loss per centimeter.
    #[must_use]
    pub fn with_loss_per_cm(mut self, db_per_cm: f64) -> Waveguide {
        self.loss_db_per_cm = db_per_cm;
        self
    }

    /// Total propagation loss over the segment.
    pub fn propagation_loss(&self) -> Decibel {
        Decibel::new(self.loss_db_per_cm * self.length_mm / 10.0)
    }
}

impl Component for Waveguide {
    fn name(&self) -> String {
        format!("waveguide-{:.1}mm", self.length_mm)
    }

    fn area(&self) -> Area {
        // ~0.5 µm wide track.
        Area::from_square_micrometers(0.5 * self.length_mm * 1000.0)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        Vec::new() // passive
    }
}

/// An off-chip laser source.
///
/// Charged per symbol slot per wavelength: `E = P_wall / f_clock` where
/// `P_wall = P_optical / wall-plug efficiency`.
///
/// # Examples
///
/// ```
/// use lumen_components::Laser;
/// use lumen_units::{Frequency, Power};
/// let laser = Laser::new(Power::from_milliwatts(4.0), 0.1);
/// let e = laser.energy_per_symbol(Frequency::from_gigahertz(5.0));
/// assert!((e.picojoules() - 8.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Laser {
    optical_power: Power,
    wall_plug_efficiency: f64,
}

impl Laser {
    /// Builds a laser emitting `optical_power` at the given wall-plug
    /// efficiency (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `wall_plug_efficiency` is not in (0, 1].
    pub fn new(optical_power: Power, wall_plug_efficiency: f64) -> Laser {
        assert!(
            wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
            "wall-plug efficiency must be in (0, 1]"
        );
        Laser {
            optical_power,
            wall_plug_efficiency,
        }
    }

    /// Emitted optical power.
    pub fn optical_power(&self) -> Power {
        self.optical_power
    }

    /// Wall-plug (electrical-to-optical) efficiency.
    pub fn wall_plug_efficiency(&self) -> f64 {
        self.wall_plug_efficiency
    }

    /// Electrical (wall) power drawn.
    pub fn wall_power(&self) -> Power {
        self.optical_power / self.wall_plug_efficiency
    }

    /// Electrical energy per symbol slot at the given symbol rate.
    pub fn energy_per_symbol(&self, clock: Frequency) -> Energy {
        self.wall_power() * clock.period()
    }
}

impl Component for Laser {
    fn name(&self) -> String {
        "laser".into()
    }

    fn area(&self) -> Area {
        Area::ZERO // off-chip
    }

    fn static_power(&self) -> Power {
        self.wall_power()
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        Vec::new() // charged per cycle via `energy_per_symbol`
    }
}

/// A Kerr frequency-comb source providing `wavelengths` carriers from one
/// pump laser (how WDM photonic accelerators source many channels).
///
/// # Examples
///
/// ```
/// use lumen_components::CombSource;
/// use lumen_units::Power;
/// let comb = CombSource::new(8, Power::from_milliwatts(1.0), 0.1, 0.3);
/// assert_eq!(comb.wavelengths(), 8);
/// assert!(comb.wall_power().milliwatts() > 8.0 / 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CombSource {
    wavelengths: usize,
    power_per_line: Power,
    wall_plug_efficiency: f64,
    comb_conversion_efficiency: f64,
}

impl CombSource {
    /// Builds a comb with `wavelengths` lines of `power_per_line` each,
    /// produced at `wall_plug_efficiency` (pump laser) ×
    /// `comb_conversion_efficiency` (pump→comb line conversion).
    ///
    /// # Panics
    ///
    /// Panics if `wavelengths` is zero or efficiencies are not in (0, 1].
    pub fn new(
        wavelengths: usize,
        power_per_line: Power,
        wall_plug_efficiency: f64,
        comb_conversion_efficiency: f64,
    ) -> CombSource {
        assert!(wavelengths > 0, "need at least one wavelength");
        assert!(
            wall_plug_efficiency > 0.0 && wall_plug_efficiency <= 1.0,
            "wall-plug efficiency must be in (0, 1]"
        );
        assert!(
            comb_conversion_efficiency > 0.0 && comb_conversion_efficiency <= 1.0,
            "comb conversion efficiency must be in (0, 1]"
        );
        CombSource {
            wavelengths,
            power_per_line,
            wall_plug_efficiency,
            comb_conversion_efficiency,
        }
    }

    /// Number of carrier wavelengths.
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }

    /// Optical power per comb line.
    pub fn power_per_line(&self) -> Power {
        self.power_per_line
    }

    /// Total electrical power drawn by the pump.
    pub fn wall_power(&self) -> Power {
        self.power_per_line * self.wavelengths as f64
            / (self.wall_plug_efficiency * self.comb_conversion_efficiency)
    }

    /// Electrical energy per symbol slot (all lines together).
    pub fn energy_per_symbol(&self, clock: Frequency) -> Energy {
        self.wall_power() * clock.period()
    }
}

impl Component for CombSource {
    fn name(&self) -> String {
        format!("comb-source-{}λ", self.wavelengths)
    }

    fn area(&self) -> Area {
        Area::ZERO // off-chip pump + ring
    }

    fn static_power(&self) -> Power {
        self.wall_power()
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_units::Frequency;

    #[test]
    fn mrr_hold_energy_scales_with_clock() {
        let mrr = Microring::new();
        let slow = mrr.hold_energy(Frequency::from_gigahertz(1.0));
        let fast = mrr.hold_energy(Frequency::from_gigahertz(10.0));
        assert!((slow / fast - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mzm_default_is_sub_pj_to_pj() {
        let e = MachZehnder::new().modulation_energy();
        assert!(e.picojoules() > 0.1 && e.picojoules() < 5.0);
    }

    #[test]
    fn star_coupler_loss_grows_with_fanout() {
        let l2 = StarCoupler::new(2).total_loss();
        let l16 = StarCoupler::new(16).total_loss();
        assert!(l16.db() > l2.db());
        // 1:16 fundamental split alone is 12 dB.
        assert!(l16.db() >= 12.0);
    }

    #[test]
    fn star_coupler_unit_fanout_lossless_split() {
        let sc = StarCoupler::new(1);
        assert_eq!(sc.splitting_loss().db(), 0.0);
        assert_eq!(sc.excess_loss().db(), 0.0);
    }

    #[test]
    fn waveguide_loss_linear_in_length() {
        let l1 = Waveguide::new(5.0).propagation_loss();
        let l2 = Waveguide::new(10.0).propagation_loss();
        assert!((l2.db() / l1.db() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn laser_energy_per_symbol() {
        let laser = Laser::new(Power::from_milliwatts(1.0), 0.2);
        assert!((laser.wall_power().milliwatts() - 5.0).abs() < 1e-12);
        let e = laser.energy_per_symbol(Frequency::from_gigahertz(5.0));
        assert!((e.picojoules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn comb_source_accounts_for_conversion() {
        let comb = CombSource::new(8, Power::from_milliwatts(0.5), 0.2, 0.25);
        // 8 × 0.5 mW optical / (0.2 × 0.25) = 80 mW wall.
        assert!((comb.wall_power().milliwatts() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn passive_components_report_no_dynamic_actions() {
        assert!(StarCoupler::new(4).action_energies().is_empty());
        assert!(Waveguide::new(1.0).action_energies().is_empty());
    }

    #[test]
    fn photodiode_sensitivity_default() {
        let pd = Photodiode::new();
        assert!((pd.sensitivity().dbm() + 20.0).abs() < 1e-9);
    }
}
