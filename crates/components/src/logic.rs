//! Digital arithmetic and on-chip interconnect.

use crate::{ActionKind, Component};
use lumen_units::{Area, Energy};

/// A ripple/prefix adder: energy linear in operand width.
///
/// # Examples
///
/// ```
/// use lumen_components::Adder;
/// let a8 = Adder::new(8);
/// let a16 = Adder::new(16);
/// assert!(a16.add_energy() > a8.add_energy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adder {
    bits: u32,
}

impl Adder {
    /// Builds an adder over `bits`-wide operands.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: u32) -> Adder {
        assert!(bits > 0, "adder width must be nonzero");
        Adder { bits }
    }

    /// Energy of one addition (~2.5 fJ/bit at ~22 nm).
    pub fn add_energy(&self) -> Energy {
        Energy::from_femtojoules(2.5 * self.bits as f64)
    }
}

impl Component for Adder {
    fn name(&self) -> String {
        format!("adder-{}b", self.bits)
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(2.0 * self.bits as f64)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Compute, self.add_energy())]
    }
}

/// An array multiplier: energy quadratic in operand width.
///
/// # Examples
///
/// ```
/// use lumen_components::Multiplier;
/// let m = Multiplier::new(8);
/// assert!(m.multiply_energy().femtojoules() > 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Multiplier {
    bits: u32,
}

impl Multiplier {
    /// Builds a multiplier over `bits`-wide operands.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: u32) -> Multiplier {
        assert!(bits > 0, "multiplier width must be nonzero");
        Multiplier { bits }
    }

    /// Energy of one multiplication (~1.5 fJ per bit² at ~22 nm; an 8-bit
    /// multiply costs ~0.1 pJ, matching published digital-MAC surveys).
    pub fn multiply_energy(&self) -> Energy {
        Energy::from_femtojoules(1.5 * (self.bits as f64).powi(2))
    }
}

impl Component for Multiplier {
    fn name(&self) -> String {
        format!("multiplier-{}b", self.bits)
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(1.2 * (self.bits as f64).powi(2))
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Compute, self.multiply_energy())]
    }
}

/// A digital multiply-accumulate unit (multiplier + accumulator add),
/// the electrical baseline a photonic MAC competes against.
///
/// # Examples
///
/// ```
/// use lumen_components::{Adder, DigitalMac, Multiplier};
/// let mac = DigitalMac::new(8);
/// let sum = Multiplier::new(8).multiply_energy() + Adder::new(2 * 8).add_energy();
/// assert_eq!(mac.mac_energy(), sum);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigitalMac {
    bits: u32,
}

impl DigitalMac {
    /// Builds a MAC over `bits`-wide operands (accumulator is `2·bits`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: u32) -> DigitalMac {
        assert!(bits > 0, "MAC width must be nonzero");
        DigitalMac { bits }
    }

    /// Energy of one multiply-accumulate.
    pub fn mac_energy(&self) -> Energy {
        Multiplier::new(self.bits).multiply_energy() + Adder::new(2 * self.bits).add_energy()
    }
}

impl Component for DigitalMac {
    fn name(&self) -> String {
        format!("digital-mac-{}b", self.bits)
    }

    fn area(&self) -> Area {
        Multiplier::new(self.bits).area() + Adder::new(2 * self.bits).area()
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Compute, self.mac_energy())]
    }
}

/// An on-chip electrical link: energy proportional to bits × distance.
///
/// # Examples
///
/// ```
/// use lumen_components::NocLink;
/// let short = NocLink::new(8, 0.5);
/// let long = NocLink::new(8, 5.0);
/// assert!(long.transmit_energy() > short.transmit_energy());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NocLink {
    width_bits: u32,
    length_mm: f64,
    fj_per_bit_mm: f64,
}

impl NocLink {
    /// Builds a link of `width_bits` wires spanning `length_mm` millimeters.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero or `length_mm` is not positive.
    pub fn new(width_bits: u32, length_mm: f64) -> NocLink {
        assert!(width_bits > 0, "link width must be nonzero");
        assert!(length_mm > 0.0, "link length must be positive");
        NocLink {
            width_bits,
            length_mm,
            fj_per_bit_mm: 60.0, // ~0.06 pJ/bit/mm repeated wire
        }
    }

    /// Overrides the wire energy coefficient (fJ per bit per mm).
    #[must_use]
    pub fn with_wire_energy(mut self, fj_per_bit_mm: f64) -> NocLink {
        self.fj_per_bit_mm = fj_per_bit_mm;
        self
    }

    /// Energy to move one flit (all `width_bits` wires toggling).
    pub fn transmit_energy(&self) -> Energy {
        Energy::from_femtojoules(self.fj_per_bit_mm * self.width_bits as f64 * self.length_mm)
    }

    /// Energy to move a single bit across the link.
    pub fn transmit_energy_per_bit(&self) -> Energy {
        Energy::from_femtojoules(self.fj_per_bit_mm * self.length_mm)
    }
}

impl Component for NocLink {
    fn name(&self) -> String {
        format!("noc-link-{}b-{:.1}mm", self.width_bits, self.length_mm)
    }

    fn area(&self) -> Area {
        // Wire tracks: ~0.2 µm pitch per wire.
        Area::from_square_micrometers(0.2 * self.width_bits as f64 * self.length_mm * 1000.0)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![(ActionKind::Transmit, self.transmit_energy())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_linear_in_bits() {
        let r = Adder::new(32).add_energy() / Adder::new(8).add_energy();
        assert!((r - 4.0).abs() < 1e-12);
    }

    #[test]
    fn multiplier_quadratic_in_bits() {
        let r = Multiplier::new(16).multiply_energy() / Multiplier::new(8).multiply_energy();
        assert!((r - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mac_decomposes() {
        let mac = DigitalMac::new(8).mac_energy();
        assert!(mac > Multiplier::new(8).multiply_energy());
        // An 8-bit digital MAC is ~0.1-0.2 pJ at this node.
        assert!(
            mac.picojoules() > 0.05 && mac.picojoules() < 0.5,
            "got {mac}"
        );
    }

    #[test]
    fn link_energy_proportional_to_length() {
        let r = NocLink::new(8, 4.0).transmit_energy() / NocLink::new(8, 1.0).transmit_energy();
        assert!((r - 4.0).abs() < 1e-12);
    }

    #[test]
    fn link_per_bit_prorates() {
        let l = NocLink::new(16, 2.0);
        assert!(
            (l.transmit_energy_per_bit() * 16.0 - l.transmit_energy())
                .picojoules()
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn reports_expose_compute_actions() {
        assert!(DigitalMac::new(8)
            .report()
            .energy(ActionKind::Compute)
            .is_some());
        assert!(NocLink::new(8, 1.0)
            .report()
            .energy(ActionKind::Transmit)
            .is_some());
    }
}
