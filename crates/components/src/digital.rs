//! Digital-electrical storage: SRAM, DRAM and register files.

use crate::{ActionKind, Component};
use lumen_units::{Area, Energy, Power};

/// An on-chip SRAM buffer with a CACTI-like analytic energy model.
///
/// The per-bit access energy grows with the square root of the per-bank
/// capacity (bitline/wordline length scaling):
///
/// `E_bit = e_base + e_slope · √(capacity_bits / banks)`
///
/// Defaults are calibrated to a ~22 nm node: a 64 KiB scratchpad costs
/// roughly 9 pJ per 64-bit read and a multi-MiB global buffer a few tens of
/// pJ, consistent with CACTI-class estimates.
///
/// # Examples
///
/// ```
/// use lumen_components::Sram;
/// let small = Sram::new(64 * 1024 * 8, 64);
/// let big = Sram::new(4 * 1024 * 1024 * 8, 64);
/// assert!(big.read_energy() > small.read_energy());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sram {
    capacity_bits: u64,
    word_bits: u32,
    banks: u32,
    base_fj_per_bit: f64,
    slope_fj_per_bit: f64,
    write_factor: f64,
    leak_nw_per_kib: f64,
    area_um2_per_bit: f64,
}

impl Sram {
    /// Builds an SRAM with `capacity_bits` total bits and `word_bits` wide
    /// access ports.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bits` or `word_bits` is zero.
    pub fn new(capacity_bits: u64, word_bits: u32) -> Sram {
        assert!(capacity_bits > 0, "SRAM capacity must be nonzero");
        assert!(word_bits > 0, "SRAM word width must be nonzero");
        Sram {
            capacity_bits,
            word_bits,
            banks: 1,
            base_fj_per_bit: 8.0,
            slope_fj_per_bit: 0.18,
            write_factor: 1.1,
            leak_nw_per_kib: 15.0,
            area_um2_per_bit: 0.3,
        }
    }

    /// Splits the array into `banks` independently accessed banks
    /// (builder style). More banks shorten bitlines and cut access energy.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Sram {
        assert!(banks > 0, "bank count must be nonzero");
        self.banks = banks;
        self
    }

    /// Overrides the analytic energy coefficients (fJ/bit base and
    /// fJ/bit-per-√bit slope); used for calibration.
    #[must_use]
    pub fn with_energy_coefficients(mut self, base_fj: f64, slope_fj: f64) -> Sram {
        self.base_fj_per_bit = base_fj;
        self.slope_fj_per_bit = slope_fj;
        self
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Access-port width in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Energy of one full-word read.
    pub fn read_energy(&self) -> Energy {
        let per_bank = self.capacity_bits as f64 / self.banks as f64;
        let per_bit = self.base_fj_per_bit + self.slope_fj_per_bit * per_bank.sqrt();
        Energy::from_femtojoules(per_bit * self.word_bits as f64)
    }

    /// Energy of one full-word write (slightly above read).
    pub fn write_energy(&self) -> Energy {
        self.read_energy() * self.write_factor
    }

    /// Energy to read a single element of `bits` width (prorated).
    pub fn read_energy_per_bit(&self) -> Energy {
        self.read_energy() / self.word_bits as f64
    }

    /// Energy to write a single bit (prorated).
    pub fn write_energy_per_bit(&self) -> Energy {
        self.write_energy() / self.word_bits as f64
    }
}

impl Component for Sram {
    fn name(&self) -> String {
        format!("sram-{}KiB", self.capacity_bits / 8 / 1024)
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(self.area_um2_per_bit * self.capacity_bits as f64)
    }

    fn static_power(&self) -> Power {
        Power::from_nanowatts(self.leak_nw_per_kib * self.capacity_bits as f64 / 8.0 / 1024.0)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![
            (ActionKind::Read, self.read_energy()),
            (ActionKind::Write, self.write_energy()),
        ]
    }
}

/// The modeled off-chip DRAM technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramKind {
    /// Mobile-class LPDDR4; the paper-level "12 pJ/bit" system energy.
    Lpddr4,
    /// Server-class DDR4 (higher IO energy).
    Ddr4,
    /// High-bandwidth memory (2.5-D integration, lowest energy/bit).
    Hbm2,
}

impl DramKind {
    /// Modeled end-to-end (device + IO + controller) energy per bit.
    pub fn energy_per_bit(self) -> Energy {
        match self {
            DramKind::Lpddr4 => Energy::from_picojoules(12.0),
            DramKind::Ddr4 => Energy::from_picojoules(20.0),
            DramKind::Hbm2 => Energy::from_picojoules(7.0),
        }
    }
}

/// Off-chip DRAM with an end-to-end energy-per-bit model.
///
/// Architecture-level models (this paper included) charge DRAM a flat
/// system energy per bit moved; row-buffer effects are folded into the
/// constant.
///
/// # Examples
///
/// ```
/// use lumen_components::{Dram, DramKind};
/// let dram = Dram::new(DramKind::Lpddr4, 8);
/// assert_eq!(dram.access_energy().picojoules(), 96.0); // 8-bit element
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dram {
    kind: DramKind,
    element_bits: u32,
    scale: f64,
}

impl Dram {
    /// Builds a DRAM channel moving `element_bits`-wide elements.
    ///
    /// # Panics
    ///
    /// Panics if `element_bits` is zero.
    pub fn new(kind: DramKind, element_bits: u32) -> Dram {
        assert!(element_bits > 0, "element width must be nonzero");
        Dram {
            kind,
            element_bits,
            scale: 1.0,
        }
    }

    /// Scales the energy-per-bit constant (calibration hook).
    #[must_use]
    pub fn with_energy_scale(mut self, scale: f64) -> Dram {
        self.scale = scale;
        self
    }

    /// The modeled technology.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// Energy to move one element (read or write — symmetric at this
    /// abstraction level).
    pub fn access_energy(&self) -> Energy {
        self.kind.energy_per_bit() * self.element_bits as f64 * self.scale
    }

    /// Energy to move one bit.
    pub fn energy_per_bit(&self) -> Energy {
        self.kind.energy_per_bit() * self.scale
    }
}

impl Component for Dram {
    fn name(&self) -> String {
        format!("dram-{:?}", self.kind).to_lowercase()
    }

    fn area(&self) -> Area {
        Area::ZERO // off-chip
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![
            (ActionKind::Read, self.access_energy()),
            (ActionKind::Write, self.access_energy()),
        ]
    }
}

/// A small multi-ported register file (fixed energy per access).
///
/// # Examples
///
/// ```
/// use lumen_components::RegisterFile;
/// let rf = RegisterFile::new(16, 8);
/// assert!(rf.read_energy().femtojoules() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterFile {
    words: u32,
    word_bits: u32,
}

impl RegisterFile {
    /// Builds a register file of `words` entries of `word_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(words: u32, word_bits: u32) -> RegisterFile {
        assert!(words > 0 && word_bits > 0, "register file must be nonempty");
        RegisterFile { words, word_bits }
    }

    /// Energy of one word read (≈ 1.2 fJ/bit plus decode overhead that
    /// grows logarithmically with the word count).
    pub fn read_energy(&self) -> Energy {
        let decode = 0.4 * (self.words as f64).log2().max(1.0);
        Energy::from_femtojoules((1.2 + decode) * self.word_bits as f64)
    }

    /// Energy of one word write.
    pub fn write_energy(&self) -> Energy {
        self.read_energy() * 1.15
    }
}

impl Component for RegisterFile {
    fn name(&self) -> String {
        format!("regfile-{}x{}b", self.words, self.word_bits)
    }

    fn area(&self) -> Area {
        Area::from_square_micrometers(0.9 * (self.words * self.word_bits) as f64)
    }

    fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
        vec![
            (ActionKind::Read, self.read_energy()),
            (ActionKind::Write, self.write_energy()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_grows_with_capacity() {
        let sizes = [64u64, 256, 1024, 4096]; // KiB
        let mut last = Energy::ZERO;
        for kib in sizes {
            let e = Sram::new(kib * 1024 * 8, 64).read_energy();
            assert!(e > last, "energy must grow with capacity");
            last = e;
        }
    }

    #[test]
    fn sram_banking_reduces_energy() {
        let flat = Sram::new(1024 * 1024 * 8, 64);
        let banked = flat.clone().with_banks(16);
        assert!(banked.read_energy() < flat.read_energy());
    }

    #[test]
    fn sram_64kib_is_pj_scale() {
        let e = Sram::new(64 * 1024 * 8, 64).read_energy();
        assert!(
            e.picojoules() > 2.0 && e.picojoules() < 30.0,
            "64KiB/64b read should be a few pJ, got {e}"
        );
    }

    #[test]
    fn sram_write_above_read() {
        let s = Sram::new(1024 * 8, 32);
        assert!(s.write_energy() > s.read_energy());
    }

    #[test]
    fn sram_per_bit_prorates() {
        let s = Sram::new(64 * 1024 * 8, 64);
        let per_bit = s.read_energy_per_bit();
        assert!((per_bit * 64.0 - s.read_energy()).picojoules().abs() < 1e-9);
    }

    #[test]
    fn dram_kinds_ordered() {
        assert!(DramKind::Hbm2.energy_per_bit() < DramKind::Lpddr4.energy_per_bit());
        assert!(DramKind::Lpddr4.energy_per_bit() < DramKind::Ddr4.energy_per_bit());
    }

    #[test]
    fn dram_scales_with_element_width() {
        let d8 = Dram::new(DramKind::Lpddr4, 8);
        let d16 = Dram::new(DramKind::Lpddr4, 16);
        assert!((d16.access_energy() / d8.access_energy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dram_has_no_area() {
        assert_eq!(Dram::new(DramKind::Hbm2, 8).area(), Area::ZERO);
    }

    #[test]
    fn regfile_much_cheaper_than_sram() {
        let rf = RegisterFile::new(16, 8);
        let sram = Sram::new(64 * 1024 * 8, 8);
        assert!(rf.read_energy() * 10.0 < sram.read_energy());
    }

    #[test]
    fn component_reports() {
        let r = Sram::new(64 * 1024 * 8, 64).report();
        assert!(r.name.contains("64KiB"));
        assert!(r.energy(ActionKind::Read).is_some());
        assert!(r.static_power.watts() > 0.0);
    }
}
