//! Analog-optical precision: noise-limited bit budgets.
//!
//! Analog photonic MACs carry values as light intensity; the received
//! signal competes with shot noise, thermal (receiver) noise and relative
//! intensity noise (RIN). The achievable resolution at the detector bounds
//! the useful ADC resolution — and since ADC energy grows exponentially
//! with bits ([`crate::Adc`]), the noise floor is an energy-accuracy
//! co-design knob, exactly the cross-domain tradeoff the paper's modeling
//! methodology targets.
//!
//! The model below is the standard direct-detection budget:
//!
//! * shot noise: `σ²_shot = 2 q R P Δf`
//! * thermal noise: `σ²_th = (NEP · R)² Δf` (folded via detector NEP)
//! * RIN: `σ²_rin = RIN · (R P)² Δf`
//!
//! SNR = `(R P)² / (σ²_shot + σ²_th + σ²_rin)` and the effective number of
//! bits follows the ADC convention `ENOB = (SNR_dB − 1.76) / 6.02`.

use lumen_units::{Frequency, Power};

/// Electron charge in coulombs.
const ELECTRON_CHARGE: f64 = 1.602_176_634e-19;

/// A direct-detection noise budget at one photodetector.
///
/// # Examples
///
/// ```
/// use lumen_components::NoiseBudget;
/// use lumen_units::{Frequency, Power};
///
/// let budget = NoiseBudget::new(Frequency::from_gigahertz(5.0));
/// let dim = budget.achievable_bits(Power::from_dbm(-30.0));
/// let bright = budget.achievable_bits(Power::from_dbm(-10.0));
/// assert!(bright > dim, "more optical power buys more bits");
/// assert!(bright < 16.0, "but the budget saturates");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseBudget {
    bandwidth: Frequency,
    responsivity_a_per_w: f64,
    nep_w_per_sqrt_hz: f64,
    rin_per_hz: f64,
}

impl NoiseBudget {
    /// Builds a budget for the given detection bandwidth with typical
    /// silicon-photonic receiver parameters: responsivity 1 A/W, NEP
    /// 2 pW/√Hz, RIN −150 dB/Hz.
    pub fn new(bandwidth: Frequency) -> NoiseBudget {
        NoiseBudget {
            bandwidth,
            responsivity_a_per_w: 1.0,
            nep_w_per_sqrt_hz: 2e-12,
            rin_per_hz: 10f64.powf(-150.0 / 10.0),
        }
    }

    /// Overrides the detector responsivity (A/W).
    ///
    /// # Panics
    ///
    /// Panics if `a_per_w` is not positive.
    #[must_use]
    pub fn with_responsivity(mut self, a_per_w: f64) -> NoiseBudget {
        assert!(a_per_w > 0.0, "responsivity must be positive");
        self.responsivity_a_per_w = a_per_w;
        self
    }

    /// Overrides the receiver noise-equivalent power (W/√Hz).
    ///
    /// # Panics
    ///
    /// Panics if `w_per_sqrt_hz` is negative.
    #[must_use]
    pub fn with_nep(mut self, w_per_sqrt_hz: f64) -> NoiseBudget {
        assert!(w_per_sqrt_hz >= 0.0, "NEP cannot be negative");
        self.nep_w_per_sqrt_hz = w_per_sqrt_hz;
        self
    }

    /// Overrides the laser relative intensity noise (dB/Hz, negative).
    #[must_use]
    pub fn with_rin_db_per_hz(mut self, db_per_hz: f64) -> NoiseBudget {
        self.rin_per_hz = 10f64.powf(db_per_hz / 10.0);
        self
    }

    /// Signal-to-noise ratio (linear) at the given received optical power.
    pub fn snr(&self, received: Power) -> f64 {
        let r = self.responsivity_a_per_w;
        let p = received.watts();
        let df = self.bandwidth.hertz();
        let signal = (r * p).powi(2);
        let shot = 2.0 * ELECTRON_CHARGE * r * p * df;
        let thermal = (self.nep_w_per_sqrt_hz * r).powi(2) * df;
        let rin = self.rin_per_hz * (r * p).powi(2) * df;
        signal / (shot + thermal + rin)
    }

    /// SNR in decibels.
    pub fn snr_db(&self, received: Power) -> f64 {
        10.0 * self.snr(received).log10()
    }

    /// Effective number of bits resolvable at the detector
    /// (`(SNR_dB − 1.76) / 6.02`, clamped at zero).
    pub fn achievable_bits(&self, received: Power) -> f64 {
        ((self.snr_db(received) - 1.76) / 6.02).max(0.0)
    }

    /// Minimum received power for `bits` of resolution, found by bisection
    /// over [1 pW, 1 W].
    ///
    /// Returns `None` if even 1 W cannot reach the target (RIN-limited).
    pub fn required_power(&self, bits: f64) -> Option<Power> {
        let target = bits * 6.02 + 1.76;
        let mut lo = 1e-12f64;
        let mut hi = 1.0f64;
        if 10.0 * self.snr(Power::from_watts(hi)).log10() < target {
            return None;
        }
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if 10.0 * self.snr(Power::from_watts(mid)).log10() < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Power::from_watts(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> NoiseBudget {
        NoiseBudget::new(Frequency::from_gigahertz(5.0))
    }

    #[test]
    fn snr_increases_with_power() {
        let b = budget();
        let mut last = 0.0;
        for dbm in [-40.0, -30.0, -20.0, -10.0, 0.0] {
            let snr = b.snr(Power::from_dbm(dbm));
            assert!(snr > last, "SNR must rise with power");
            last = snr;
        }
    }

    #[test]
    fn rin_caps_the_budget() {
        let b = budget();
        // At high power, shot and thermal vanish relative to signal but
        // RIN scales with signal²: SNR saturates at 1/(RIN·Δf).
        let ceiling = 1.0 / (10f64.powf(-15.0) * 5e9);
        let high = b.snr(Power::from_watts(0.5));
        assert!(high < ceiling * 1.01);
        assert!(high > ceiling * 0.5, "should approach the RIN ceiling");
    }

    #[test]
    fn eight_bits_needs_tens_of_microwatts() {
        let b = budget();
        let p = b.required_power(8.0).expect("8 bits reachable");
        assert!(
            p.microwatts() > 1.0 && p.microwatts() < 1000.0,
            "8-bit direct detection at 5 GHz needs µW-class power, got {p}"
        );
        // And the result is self-consistent.
        assert!(b.achievable_bits(p) >= 8.0 - 1e-6);
    }

    #[test]
    fn unreachable_precision_returns_none() {
        let b = budget(); // RIN −150 dB/Hz at 5 GHz caps SNR at ~43 dB ≈ 6.9 bits...
                          // 14 bits needs ~86 dB SNR — beyond the RIN ceiling.
        assert!(b.required_power(14.0).is_none());
    }

    #[test]
    fn quieter_laser_buys_bits() {
        let noisy = budget().with_rin_db_per_hz(-140.0);
        let quiet = budget().with_rin_db_per_hz(-160.0);
        let p = Power::from_dbm(-5.0);
        assert!(quiet.achievable_bits(p) > noisy.achievable_bits(p));
    }

    #[test]
    fn better_nep_helps_at_low_power() {
        let coarse = budget().with_nep(1e-11);
        let fine = budget().with_nep(1e-13);
        let p = Power::from_dbm(-30.0);
        assert!(fine.achievable_bits(p) > coarse.achievable_bits(p));
    }

    #[test]
    fn bandwidth_costs_resolution() {
        let slow = NoiseBudget::new(Frequency::from_gigahertz(1.0));
        let fast = NoiseBudget::new(Frequency::from_gigahertz(10.0));
        let p = Power::from_dbm(-20.0);
        assert!(slow.achievable_bits(p) > fast.achievable_bits(p));
    }
}
