//! The action vocabulary shared by all components.

use std::fmt;

/// A class of event a component can be charged energy for.
///
/// Components expose precise inherent accessors (e.g.
/// [`crate::Sram::read_energy`]); `ActionKind` is the uniform vocabulary
/// used by [`crate::Component::action_energies`] for catalogs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionKind {
    /// Read one word / element.
    Read,
    /// Write one word / element.
    Write,
    /// Convert one element across a signal-domain boundary.
    Convert,
    /// One arithmetic operation (MAC, add, multiply).
    Compute,
    /// Move one element across an interconnect.
    Transmit,
    /// Hold state for one clock cycle (static / tuning power, prorated).
    IdleCycle,
}

impl ActionKind {
    /// All actions, in canonical order.
    pub const ALL: [ActionKind; 6] = [
        ActionKind::Read,
        ActionKind::Write,
        ActionKind::Convert,
        ActionKind::Compute,
        ActionKind::Transmit,
        ActionKind::IdleCycle,
    ];
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActionKind::Read => "read",
            ActionKind::Write => "write",
            ActionKind::Convert => "convert",
            ActionKind::Compute => "compute",
            ActionKind::Transmit => "transmit",
            ActionKind::IdleCycle => "idle-cycle",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = ActionKind::ALL.iter().map(ToString::to_string).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ActionKind::ALL.len());
    }
}
