//! The common component interface.

use crate::ActionKind;
use lumen_units::{Area, Energy, Power};
use std::fmt;

/// Uniform interface over every modeled hardware component.
///
/// Concrete types also expose precise inherent accessors (preferred inside
/// the evaluator); this trait powers catalogs, reports and documentation
/// tables.
///
/// # Examples
///
/// ```
/// use lumen_components::{Adc, Component};
/// let adc = Adc::new(8);
/// let report = adc.report();
/// assert_eq!(report.name, adc.name());
/// assert!(!report.actions.is_empty());
/// ```
pub trait Component: fmt::Debug {
    /// A short, human-readable component name (e.g. `"sram-64KiB"`).
    fn name(&self) -> String;

    /// Die area of one instance.
    fn area(&self) -> Area;

    /// Static power of one instance (leakage, thermal tuning, bias).
    fn static_power(&self) -> Power {
        Power::ZERO
    }

    /// The dynamic actions this component supports with their per-event
    /// energies.
    fn action_energies(&self) -> Vec<(ActionKind, Energy)>;

    /// A self-describing report (name, area, static power, actions).
    fn report(&self) -> ComponentReport {
        ComponentReport {
            name: self.name(),
            area: self.area(),
            static_power: self.static_power(),
            actions: self.action_energies(),
        }
    }
}

/// A snapshot of a component's modeled characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentReport {
    /// Component name.
    pub name: String,
    /// Die area of one instance.
    pub area: Area,
    /// Static power of one instance.
    pub static_power: Power,
    /// Supported actions and per-event energies.
    pub actions: Vec<(ActionKind, Energy)>,
}

impl ComponentReport {
    /// The energy of `action`, if the component supports it.
    pub fn energy(&self, action: ActionKind) -> Option<Energy> {
        self.actions
            .iter()
            .find(|(a, _)| *a == action)
            .map(|(_, e)| *e)
    }
}

impl fmt::Display for ComponentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} area={:<12} static={:<12}",
            self.name,
            format!("{}", self.area),
            format!("{}", self.static_power)
        )?;
        for (action, energy) in &self.actions {
            write!(f, " {action}={energy}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_units::{Area, Energy};

    #[derive(Debug)]
    struct Stub;

    impl Component for Stub {
        fn name(&self) -> String {
            "stub".into()
        }
        fn area(&self) -> Area {
            Area::from_square_micrometers(1.0)
        }
        fn action_energies(&self) -> Vec<(ActionKind, Energy)> {
            vec![(ActionKind::Read, Energy::from_picojoules(2.0))]
        }
    }

    #[test]
    fn report_round_trip() {
        let r = Stub.report();
        assert_eq!(
            r.energy(ActionKind::Read),
            Some(Energy::from_picojoules(2.0))
        );
        assert_eq!(r.energy(ActionKind::Write), None);
        assert!(format!("{r}").contains("stub"));
    }
}
