//! # lumen-components
//!
//! Accelergy-style energy / area / timing models for the hardware
//! components of electro-photonic DNN accelerators.
//!
//! The library spans all four signal domains the paper discusses:
//!
//! * **Digital-electrical (DE)** — [`Sram`], [`Dram`], [`RegisterFile`],
//!   [`Adder`], [`Multiplier`], [`DigitalMac`], [`NocLink`]
//! * **Converters** — [`Adc`] (AE/DE), [`Dac`] (DE/AE), [`SampleAndHold`]
//! * **Analog-optical (AO)** — [`Microring`], [`MachZehnder`],
//!   [`Photodiode`], [`StarCoupler`], [`Waveguide`], [`Laser`],
//!   [`CombSource`]
//! * **Link budgets** — [`LinkBudget`] turns optical losses plus detector
//!   sensitivity into a required laser power and energy per symbol.
//!
//! Each component is a plain value type with inherent accessors for its
//! per-action energies, plus a common [`Component`] trait for catalogs and
//! reports. Device-level parameters default to published, literature-
//! plausible values and every constructor exposes `with_*` overrides so a
//! case study (e.g. Albireo, ISCA 2021) can calibrate against reported
//! numbers.
//!
//! # Examples
//!
//! ```
//! use lumen_components::{Adc, Sram};
//!
//! let glb = Sram::new(8 * 1024 * 1024 * 8, 256); // 8 MiB, 256-bit words
//! let adc = Adc::new(8);
//! assert!(glb.read_energy() > adc.conversion_energy());
//! ```

mod action;
mod catalog;
mod component;
mod converter;
mod digital;
mod logic;
mod noise;
mod optics;
mod photonic;
mod scaling;

pub use action::ActionKind;
pub use catalog::ComponentCatalog;
pub use component::{Component, ComponentReport};
pub use converter::{Adc, Dac, SampleAndHold};
pub use digital::{Dram, DramKind, RegisterFile, Sram};
pub use logic::{Adder, DigitalMac, Multiplier, NocLink};
pub use noise::NoiseBudget;
pub use optics::LinkBudget;
pub use photonic::{CombSource, Laser, MachZehnder, Microring, Photodiode, StarCoupler, Waveguide};
pub use scaling::{ScalingFactors, ScalingProfile};
