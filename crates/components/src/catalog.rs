//! A named registry of component models.

use crate::{Component, ComponentReport};
use std::collections::BTreeMap;
use std::fmt;

/// A named collection of component models — the "component library" an
/// architecture references.
///
/// # Examples
///
/// ```
/// use lumen_components::{Adc, ComponentCatalog, Dac};
///
/// let mut catalog = ComponentCatalog::new();
/// catalog.insert("output-adc", Adc::new(8));
/// catalog.insert("input-dac", Dac::new(8));
/// assert_eq!(catalog.len(), 2);
/// assert!(catalog.report("output-adc").is_some());
/// ```
#[derive(Default)]
pub struct ComponentCatalog {
    entries: BTreeMap<String, Box<dyn Component + Send + Sync>>,
}

impl ComponentCatalog {
    /// Creates an empty catalog.
    pub fn new() -> ComponentCatalog {
        ComponentCatalog {
            entries: BTreeMap::new(),
        }
    }

    /// Registers a component under `name`, replacing any previous entry
    /// with the same name. Returns `true` if an entry was replaced.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        component: impl Component + Send + Sync + 'static,
    ) -> bool {
        self.entries
            .insert(name.into(), Box::new(component))
            .is_some()
    }

    /// The component registered under `name`.
    pub fn get(&self, name: &str) -> Option<&(dyn Component + Send + Sync)> {
        self.entries.get(name).map(AsRef::as_ref)
    }

    /// A report for the component registered under `name`.
    pub fn report(&self, name: &str) -> Option<ComponentReport> {
        self.get(name).map(Component::report)
    }

    /// Reports for every component, sorted by name.
    pub fn reports(&self) -> Vec<ComponentReport> {
        self.entries.values().map(|c| c.report()).collect()
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no components are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, component)` pairs sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &(dyn Component + Send + Sync))> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }
}

impl fmt::Debug for ComponentCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentCatalog")
            .field("entries", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl fmt::Display for ComponentCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for report in self.reports() {
            writeln!(f, "{report}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adc, Dac, Sram};

    #[test]
    fn insert_get_replace() {
        let mut cat = ComponentCatalog::new();
        assert!(!cat.insert("adc", Adc::new(8)));
        assert!(cat.insert("adc", Adc::new(10)), "replacement reported");
        assert!(cat.get("adc").is_some());
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn reports_sorted_by_name() {
        let mut cat = ComponentCatalog::new();
        cat.insert("z-sram", Sram::new(8192, 64));
        cat.insert("a-dac", Dac::new(8));
        let names: Vec<String> = cat.reports().into_iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 2);
        // Catalog iterates in key order; reports follow.
        let keys: Vec<&str> = cat.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a-dac", "z-sram"]);
    }

    #[test]
    fn display_lists_components() {
        let mut cat = ComponentCatalog::new();
        cat.insert("adc", Adc::new(8));
        assert!(format!("{cat}").contains("adc-8b"));
    }
}
