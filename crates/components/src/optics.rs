//! Optical link budgets: from losses and detector sensitivity to required
//! laser power.

use lumen_units::{Decibel, Energy, Frequency, Power};

/// An end-to-end optical link budget.
///
/// The budget answers: *how much laser power must be launched so that,
/// after every loss on the path, the detector still receives its minimum
/// sensitivity?* In a WDM broadcast system the answer scales the laser
/// (and therefore per-MAC) energy — this is the physical mechanism behind
/// the Fig. 5 tension between optical fan-out (reuse) and laser energy.
///
/// `P_launch = sensitivity × 10^((losses + margin)/10)`
///
/// # Examples
///
/// ```
/// use lumen_components::LinkBudget;
/// use lumen_units::{Decibel, Frequency, Power};
///
/// let link = LinkBudget::new(Power::from_dbm(-20.0))
///     .with_loss(Decibel::new(10.0))
///     .with_margin(Decibel::new(3.0))
///     .with_wall_plug_efficiency(0.2);
///
/// // -20 dBm + 13 dB = -7 dBm launch power ≈ 0.2 mW optical, 1 mW wall.
/// assert!((link.required_launch_power().dbm() + 7.0).abs() < 1e-9);
/// let e = link.energy_per_symbol(Frequency::from_gigahertz(5.0));
/// assert!(e.picojoules() > 0.15 && e.picojoules() < 0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBudget {
    sensitivity: Power,
    losses: Decibel,
    margin: Decibel,
    wall_plug_efficiency: f64,
}

impl LinkBudget {
    /// Builds a budget for a detector of the given minimum sensitivity,
    /// with no losses, no margin and an ideal laser.
    pub fn new(sensitivity: Power) -> LinkBudget {
        LinkBudget {
            sensitivity,
            losses: Decibel::ZERO,
            margin: Decibel::ZERO,
            wall_plug_efficiency: 1.0,
        }
    }

    /// Adds path loss (builder style, cumulative).
    #[must_use]
    pub fn with_loss(mut self, loss: Decibel) -> LinkBudget {
        self.losses += loss;
        self
    }

    /// Sets the safety margin.
    #[must_use]
    pub fn with_margin(mut self, margin: Decibel) -> LinkBudget {
        self.margin = margin;
        self
    }

    /// Sets the laser wall-plug efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is not in (0, 1].
    #[must_use]
    pub fn with_wall_plug_efficiency(mut self, eff: f64) -> LinkBudget {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        self.wall_plug_efficiency = eff;
        self
    }

    /// Total path loss accumulated so far.
    pub fn losses(&self) -> Decibel {
        self.losses
    }

    /// Minimum optical power to launch.
    pub fn required_launch_power(&self) -> Power {
        self.sensitivity * (self.losses + self.margin).linear()
    }

    /// Electrical (wall) power of the laser driving this link.
    pub fn required_wall_power(&self) -> Power {
        self.required_launch_power() / self.wall_plug_efficiency
    }

    /// Electrical energy per symbol slot at the given symbol rate.
    pub fn energy_per_symbol(&self, clock: Frequency) -> Energy {
        self.required_wall_power() * clock.period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_budget_launches_sensitivity() {
        let link = LinkBudget::new(Power::from_dbm(-20.0));
        assert!((link.required_launch_power().dbm() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn losses_accumulate() {
        let link = LinkBudget::new(Power::from_dbm(-20.0))
            .with_loss(Decibel::new(3.0))
            .with_loss(Decibel::new(4.0));
        assert!((link.losses().db() - 7.0).abs() < 1e-12);
        assert!((link.required_launch_power().dbm() + 13.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_divides_wall_power() {
        let ideal = LinkBudget::new(Power::from_dbm(-10.0));
        let lossy = ideal.clone().with_wall_plug_efficiency(0.1);
        assert!((lossy.required_wall_power() / ideal.required_wall_power() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_inverse_with_clock() {
        let link = LinkBudget::new(Power::from_dbm(-15.0)).with_loss(Decibel::new(6.0));
        let slow = link.energy_per_symbol(Frequency::from_gigahertz(1.0));
        let fast = link.energy_per_symbol(Frequency::from_gigahertz(4.0));
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_fanout_roughly_doubles_power() {
        // Adding a 3.01 dB split doubles the required launch power.
        let base = LinkBudget::new(Power::from_dbm(-20.0)).with_loss(Decibel::new(5.0));
        let split = base.clone().with_loss(Decibel::from_linear(2.0));
        let ratio = split.required_launch_power() / base.required_launch_power();
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
