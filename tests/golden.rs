//! Golden-file regression suite: every paper figure (and the transformer
//! study) renders to a string and must match its checked-in snapshot
//! under `tests/golden/`.
//!
//! The reproduction tests in `paper_reproduction.rs` assert *shapes*
//! (who wins, by what factor); this suite locks the *exact* rendered
//! numbers, so any drift in the model — a changed device constant, a
//! mapper tweak, a refactor that silently moves a decimal — fails loudly
//! even when the shape assertions still pass.
//!
//! When a change is intentional, regenerate the snapshots and review the
//! diff like any other code change:
//!
//! ```sh
//! LUMEN_BLESS=1 cargo test --test golden
//! git diff tests/golden/
//! ```
//!
//! The rendered tables are pure functions of the model (fixed-seed,
//! platform-independent f64 arithmetic), so snapshots are stable across
//! machines and thread counts.

use lumen::albireo::{experiments, ScalingProfile};
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Writes the *actual* rendering of a failed comparison to
/// `target/golden-actual/<name>.txt`, where CI uploads it (together with
/// the checked-in snapshots) as a debugging artifact — a golden
/// regression on a runner is then diffable from the Actions UI without a
/// local repro. Best-effort: failure to record the artifact never masks
/// the assertion itself.
fn record_actual(name: &str, actual: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/golden-actual");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, actual) {
        eprintln!("warning: could not write {path:?}: {e}");
    }
}

/// Compares `actual` against the snapshot `tests/golden/<name>.txt`,
/// rewriting the snapshot instead when `LUMEN_BLESS=1` is set. On
/// mismatch the actual rendering is saved under `target/golden-actual/`
/// for the CI artifact upload before the assertion fires.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("LUMEN_BLESS").as_deref() == Ok("1") {
        fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        record_actual(name, actual);
        panic!(
            "missing snapshot {path:?} ({e}); generate it with \
             `LUMEN_BLESS=1 cargo test --test golden` \
             (actual output saved to target/golden-actual/{name}.txt)"
        )
    });
    if actual != expected {
        record_actual(name, actual);
    }
    assert_eq!(
        actual, expected,
        "rendered `{name}` drifted from its snapshot; if the change is \
         intentional, regenerate with `LUMEN_BLESS=1 cargo test --test \
         golden` and review the diff (actual output saved to \
         target/golden-actual/{name}.txt)"
    );
}

#[test]
fn fig2_energy_breakdown_matches_snapshot() {
    let result = experiments::fig2_energy_breakdown().expect("fig2 evaluates");
    assert_golden("fig2", &result.to_string());
}

#[test]
fn fig3_throughput_matches_snapshot() {
    let result = experiments::fig3_throughput().expect("fig3 evaluates");
    assert_golden("fig3", &result.to_string());
}

#[test]
fn fig4_memory_exploration_matches_snapshot() {
    let result = experiments::fig4_memory_exploration().expect("fig4 evaluates");
    assert_golden("fig4", &result.to_string());
}

#[test]
fn fig5_reuse_exploration_matches_snapshot() {
    let result = experiments::fig5_reuse_exploration().expect("fig5 evaluates");
    assert_golden("fig5", &result.to_string());
}

#[test]
fn transformer_study_matches_snapshot() {
    // Both corners: the conservative one pins the "digital wins" side of
    // the crossover, the aggressive one the "photonics win" side.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::transformer_study(scaling)
                .expect("study evaluates")
                .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("transformer_study", &rendered);
}

#[test]
fn decode_study_matches_snapshot() {
    // Both corners, each table carrying both system families (the
    // Albireo custom dataflow and the digital baseline's): conservative
    // pins "photonics lose decode outright", aggressive pins the
    // prefill-to-decode collapse of the energy edge, and both pin the
    // widening utilization gap plus the sweep's exact cache accounting.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::decode_study(scaling)
                .expect("study evaluates")
                .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("decode_study", &rendered);
}

#[test]
fn serving_study_matches_snapshot() {
    // Both corners: conservative pins "digital wins every mix", while
    // aggressive pins the thin photonic energy edge surviving continuous
    // batching. Both pin the occupancy lever (more slots -> larger decode
    // groups -> lower mJ/token), the ~30x utilization gap under grouped
    // seq-1 GEMVs, and the study's exact cache accounting.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::serving_study(scaling)
                .expect("study evaluates")
                .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("serving_study", &rendered);
}

#[test]
fn serving_slo_study_matches_snapshot() {
    // Both corners of the open-loop study: every arrival process and
    // admission policy, TTFT/TBT percentiles at the system clock, the
    // admission-lever footer, the prefill-charged accounting and the
    // eval-cache hit rate — all seeded, so exact across machines.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::serving_slo_study(scaling)
                .expect("study evaluates")
                .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("serving_slo_study", &rendered);
}

#[test]
fn paged_serving_study_matches_snapshot() {
    // Both corners of the paged-residency study: the exact bucketed vs
    // paged backing-store delta, the peak-waste collapse, the prefix-
    // sharing prefill/MAC/energy savings net of the copy-on-write tail,
    // and the eval-cache accounting — all deterministic, so the measured
    // deltas the README quotes are pinned here.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::paged_serving_study(scaling)
                .expect("study evaluates")
                .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("paged_serving_study", &rendered);
}

#[test]
fn capacity_plan_matches_snapshot() {
    // Both corners of the fleet capacity plan: the default three-instance
    // round-robin fleet — per-instance request/step/occupancy rows, the
    // fleet-wide TTFT/TBT percentiles pooled at each instance's clock,
    // tokens/s over the fleet makespan, energy/token, occupancy skew and
    // the shared-session eval-cache accounting — all seeded, so exact.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::capacity_plan_study(
                scaling,
                experiments::FLEET_INSTANCES,
                lumen::workload::FleetRouter::RoundRobin,
                experiments::fleet_arrival(),
            )
            .expect("study evaluates")
            .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("capacity_plan", &rendered);
}

#[test]
fn fleet_slo_search_matches_snapshot() {
    // Both corners of the SLO search: the per-fleet-size rows and the
    // verdict — the smallest fleet whose p99 TTFT meets the target at
    // each corner. The 20 ms target is chosen to be *met* within the
    // sweep bound at both corners, so the snapshot pins a real minimum
    // rather than an exhausted search.
    let mut rendered = String::new();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        rendered.push_str(
            &experiments::fleet_slo_search(
                scaling,
                20.0,
                lumen::workload::FleetRouter::JoinShortestQueue,
                experiments::fleet_arrival(),
            )
            .expect("search evaluates")
            .to_string(),
        );
        rendered.push('\n');
    }
    assert_golden("fleet_slo_search", &rendered);
}

#[test]
fn csv_rendering_matches_snapshot() {
    // The CSV path is the machine-readable export surface; lock one
    // figure's CSV too so escaping/format changes cannot slip through.
    let result = experiments::fig3_throughput().expect("fig3 evaluates");
    assert_golden("fig3_csv", &result.table().to_csv());
}
