//! Property-based tests on the modeling core's invariants.
//!
//! Random layers and architectures drive the mapper + evaluator; the
//! properties are conservation laws and monotonicities that must hold for
//! *any* legal input, not just the paper's workloads.

use lumen::arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen::core::{MappingStrategy, System};
use lumen::mapper::analyze;
use lumen::mapper::search::{greedy_mapping, TemporalPlan, DEFAULT_SPATIAL_PRIORITY};
use lumen::units::{Energy, Frequency};
use lumen::workload::{Dim, DimSet, Layer, TensorKind, TensorSet};
use proptest::prelude::*;

fn toy_arch(fanout: usize, dims: &[Dim]) -> Architecture {
    ArchBuilder::new("prop", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("buf", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(fanout).allow(DimSet::from_dims(dims)))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.1),
        )
        .build()
        .expect("toy architecture is valid")
}

/// Strategy: a small random conv layer.
fn layer_strategy() -> impl Strategy<Value = Layer> {
    (
        1usize..=2,  // n
        1usize..=32, // m
        1usize..=16, // c
        1usize..=14, // p
        1usize..=14, // q
        1usize..=3,  // r
        1usize..=3,  // s
        1usize..=2,  // stride
    )
        .prop_map(|(n, m, c, p, q, r, s, stride)| {
            Layer::conv2d("prop", n, m, c, p, q, r, s).with_stride(stride, stride)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_mapping_is_always_legal(layer in layer_strategy(), fanout in 1usize..=16) {
        let arch = toy_arch(fanout, &[Dim::M, Dim::C, Dim::Q]);
        let mapping = greedy_mapping(&arch, &layer, &DEFAULT_SPATIAL_PRIORITY, &TemporalPlan::all_at(1));
        prop_assert!(mapping.validate(&arch, &layer).is_ok());
        let analysis = analyze(&arch, &layer, &mapping).unwrap();
        prop_assert_eq!(analysis.macs, layer.macs());
        prop_assert!(analysis.padded_macs >= analysis.macs);
        prop_assert!(analysis.utilization > 0.0 && analysis.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn multicast_bounded_by_fanout(layer in layer_strategy(), fanout in 1usize..=16) {
        let arch = toy_arch(fanout, &[Dim::M, Dim::C, Dim::Q]);
        let mapping = greedy_mapping(&arch, &layer, &DEFAULT_SPATIAL_PRIORITY, &TemporalPlan::all_at(1));
        let analysis = analyze(&arch, &layer, &mapping).unwrap();
        for t in [TensorKind::Weight, TensorKind::Input] {
            let parent_reads = analysis.level(0).reads[t];
            let child_fills = analysis.level(1).writes[t];
            // Multicast never amplifies parent traffic and never shares
            // more ways than the fan-out provides.
            prop_assert!(parent_reads <= child_fills + 1e-6);
            prop_assert!(child_fills <= parent_reads * fanout as f64 + 1e-6);
        }
    }

    #[test]
    fn compute_energy_scales_with_padded_macs(layer in layer_strategy()) {
        let arch = toy_arch(8, &[Dim::M, Dim::C]);
        let system = System::new(arch, MappingStrategy::default());
        let eval = system.evaluate_layer(&layer).unwrap();
        let compute = eval.energy.by_category(lumen::core::CostCategory::Compute);
        let expected = 0.1 * eval.analysis.padded_macs as f64;
        prop_assert!((compute.picojoules() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn output_traffic_accounts_for_every_mac(layer in layer_strategy()) {
        let arch = toy_arch(8, &[Dim::M, Dim::C]);
        let mapping = greedy_mapping(&arch, &layer, &DEFAULT_SPATIAL_PRIORITY, &TemporalPlan::all_at(1));
        let analysis = analyze(&arch, &layer, &mapping).unwrap();
        // Every padded MAC's partial sum lands somewhere: the innermost
        // output keeper absorbs them (spatial reduction can shrink the
        // count, bounded by the fan-out).
        let updates = analysis.level(1).writes[TensorKind::Output];
        let padded = analysis.padded_macs as f64;
        prop_assert!(updates <= padded + 1e-6);
        prop_assert!(updates * 8.0 + 1e-6 >= padded);
    }

    #[test]
    fn outputs_written_at_least_once_to_dram(layer in layer_strategy()) {
        let arch = toy_arch(8, &[Dim::M, Dim::C]);
        let mapping = greedy_mapping(&arch, &layer, &DEFAULT_SPATIAL_PRIORITY, &TemporalPlan::all_at(1));
        let analysis = analyze(&arch, &layer, &mapping).unwrap();
        let dram_writes = analysis.level(0).writes[TensorKind::Output];
        let outputs = layer.tensor_elements(TensorKind::Output) as f64;
        // Every output element reaches the backing store at least once
        // (padding may add more).
        prop_assert!(dram_writes >= outputs - 1e-6);
    }

    #[test]
    fn bigger_fanout_never_slows_a_layer(layer in layer_strategy()) {
        let small = toy_arch(4, &[Dim::M, Dim::C]);
        let big = toy_arch(16, &[Dim::M, Dim::C]);
        let ms = greedy_mapping(&small, &layer, &DEFAULT_SPATIAL_PRIORITY, &TemporalPlan::all_at(1));
        let mb = greedy_mapping(&big, &layer, &DEFAULT_SPATIAL_PRIORITY, &TemporalPlan::all_at(1));
        let a_small = analyze(&small, &layer, &ms).unwrap();
        let a_big = analyze(&big, &layer, &mb).unwrap();
        prop_assert!(a_big.cycles <= a_small.cycles);
    }

    #[test]
    fn energy_is_finite_and_positive(layer in layer_strategy()) {
        let arch = toy_arch(8, &[Dim::M, Dim::C, Dim::Q]);
        let system = System::new(arch, MappingStrategy::default());
        let eval = system.evaluate_layer(&layer).unwrap();
        prop_assert!(eval.energy.total().is_finite());
        prop_assert!(eval.energy.total() > Energy::ZERO);
        for item in eval.energy.items() {
            prop_assert!(item.energy.raw() >= 0.0, "no negative energy items");
        }
    }
}
