//! Cross-crate integration: the facade, conservation laws across the
//! mapper/evaluator boundary, and behavioral invariants of full systems.

use lumen::albireo::{AlbireoConfig, ScalingProfile};
use lumen::arch::{ArchBuilder, Domain, Fanout};
use lumen::core::{MappingStrategy, NetworkOptions, System};
use lumen::mapper::analyze;
use lumen::units::{Energy, Frequency};
use lumen::workload::{networks, Dim, DimSet, Layer, TensorKind, TensorSet};

#[test]
fn facade_reexports_cover_the_stack() {
    // One expression touching every crate through the facade.
    let system = AlbireoConfig::new(ScalingProfile::Moderate).build_system();
    let net = networks::resnet18();
    let eval = system
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("resnet maps");
    assert!(eval.energy.total() > Energy::ZERO);
    assert_eq!(eval.macs, net.total_macs());
}

#[test]
fn every_network_maps_on_every_corner() {
    for scaling in ScalingProfile::ALL {
        let system = AlbireoConfig::new(scaling).build_system();
        for name in networks::NAMES {
            let net = networks::by_name(name).unwrap();
            let eval = system
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap_or_else(|e| panic!("{name} on {scaling}: {e}"));
            assert!(eval.average_utilization() > 0.0);
            assert!(eval.average_utilization() <= 1.0 + 1e-9);
            assert!(eval.energy.total().is_finite());
        }
    }
}

#[test]
fn transformer_mapped_macs_match_analytic_totals() {
    // Per-layer MAC counts that come back from the full stack (network
    // builder -> albireo dataflow -> nest analysis) must equal both the
    // layer shapes' own counts and the closed-form totals computed from
    // the architecture hyperparameters — three independent code paths.
    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    let analytic: [(&str, u64); 3] = [
        ("bert-base", networks::bert_base_macs()),
        ("gpt2-small", networks::gpt2_small_macs()),
        ("vit-b16", networks::vit_b16_macs()),
    ];
    for (name, expected) in analytic {
        let net = networks::by_name(name).unwrap();
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut mapped_total = 0u64;
        for (layer, layer_eval) in net.layers().iter().zip(eval.per_layer.iter()) {
            assert_eq!(
                layer_eval.analysis.macs,
                layer.macs(),
                "{name}/{}: mapped MACs disagree with the layer shape",
                layer.name()
            );
            mapped_total += layer_eval.analysis.macs;
        }
        assert_eq!(mapped_total, expected, "{name}: total disagrees");
        assert_eq!(eval.macs, expected, "{name}: evaluation total disagrees");
    }
}

#[test]
fn dram_traffic_conservation_on_toy_system() {
    // Parent reads x multicast >= child fills; both sides computed by the
    // nest analysis through independent code paths.
    let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .done()
        .storage("buf", Domain::DigitalElectrical, TensorSet::all())
        .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M])))
        .done()
        .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
        .build()
        .unwrap();
    let layer = Layer::conv2d("l", 1, 16, 8, 8, 8, 3, 3);
    let system = System::new(arch.clone(), MappingStrategy::default());
    let mapping = system.map_layer(&layer).unwrap();
    let analysis = analyze(&arch, &layer, &mapping).unwrap();
    for t in [TensorKind::Weight, TensorKind::Input] {
        let parent_reads = analysis.level(0).reads[t];
        let child_fills = analysis.level(1).writes[t];
        assert!(
            parent_reads <= child_fills + 1e-6,
            "multicast can only reduce parent-side traffic for {t}"
        );
        assert!(
            child_fills <= parent_reads * 8.0 + 1e-6,
            "sharing is bounded by the fan-out for {t}"
        );
    }
}

#[test]
fn scaling_orders_full_system_energy() {
    let net = networks::resnet18();
    let mut totals = Vec::new();
    for scaling in ScalingProfile::ALL {
        let system = AlbireoConfig::new(scaling).build_system();
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap();
        totals.push(eval.energy.total());
    }
    assert!(
        totals[0] > totals[1] && totals[1] > totals[2],
        "energy must fall monotonically with more aggressive scaling: {totals:?}"
    );
}

#[test]
fn batching_never_hurts_and_saturates() {
    let net = networks::resnet18();
    let system = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
    let mut previous = f64::INFINITY;
    let mut savings = Vec::new();
    for batch in [1usize, 4, 16, 64] {
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline().with_batch(batch))
            .unwrap();
        let total = eval.energy.total().millijoules();
        assert!(
            total <= previous * 1.0001,
            "batch {batch} must not increase per-inference energy"
        );
        savings.push(previous - total);
        previous = total;
    }
    // Diminishing returns: each 4x batch step saves less than the last.
    assert!(savings[1] > savings[2] && savings[2] > savings[3]);
}

#[test]
fn bigger_global_buffer_trades_access_energy_for_dram() {
    let net = networks::resnet18();
    let small = AlbireoConfig::new(ScalingProfile::Aggressive)
        .with_glb_mebibytes(2)
        .build_system();
    let large = AlbireoConfig::new(ScalingProfile::Aggressive)
        .with_glb_mebibytes(16)
        .build_system();
    let opts = NetworkOptions::baseline();
    let small_eval = small.evaluate_network(&net, &opts).unwrap();
    let large_eval = large.evaluate_network(&net, &opts).unwrap();
    // A larger buffer costs more per access...
    assert!(
        large.arch().level_named("glb").unwrap().read_energy()
            > small.arch().level_named("glb").unwrap().read_energy()
    );
    // ...and never increases DRAM traffic energy (tiles only get bigger).
    assert!(large_eval.energy.by_label("dram") <= small_eval.energy.by_label("dram") * 1.0001);
}

#[test]
fn peak_parallelism_bounds_every_throughput() {
    for scaling in ScalingProfile::ALL {
        let system = AlbireoConfig::new(scaling).build_system();
        let peak = system.arch().peak_parallelism() as f64;
        for name in networks::NAMES {
            let net = networks::by_name(name).unwrap();
            let eval = system
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap();
            assert!(eval.throughput_macs_per_cycle() <= peak + 1e-9);
        }
    }
}

#[test]
fn grouped_layers_round_trip_through_the_system() {
    // AlexNet conv2 is grouped; its evaluation must count both groups.
    let alexnet = networks::alexnet();
    let conv2 = alexnet
        .layers()
        .iter()
        .find(|l| l.name() == "conv2")
        .unwrap();
    assert_eq!(conv2.groups(), 2);
    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    let eval = system.evaluate_layer(conv2).unwrap();
    assert_eq!(eval.analysis.macs, conv2.macs());
    // Two groups serialize: cycles account for both.
    assert!(eval.analysis.cycles > conv2.macs() / system.arch().peak_parallelism());
}
