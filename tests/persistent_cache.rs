//! Cross-process guarantees of the persistent evaluation cache: a
//! session warm-started from a disk snapshot reproduces the cold
//! session **bit for bit** without re-running any mapping search, and
//! every way a snapshot file can be damaged degrades silently to a cold
//! start.
//!
//! These tests simulate "another process" the honest way: a fresh
//! `EvalCache::persistent_in` over the same directory, which re-reads
//! the snapshot from disk exactly as a new CLI invocation with
//! `--cache-dir` would.

use lumen::albireo::{AlbireoConfig, ScalingProfile};
use lumen::core::{
    inspect_cache_dir, EvalCache, EvalSession, MappingStrategy, NetworkOptions, System,
};
use lumen::mapper::search::SearchConfig;
use lumen::workload::{networks, Layer};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch directory per call, so parallel tests (and proptest
/// cases) never share snapshots.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lumen-persist-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn strategies() -> Vec<(&'static str, MappingStrategy)> {
    vec![
        ("greedy", MappingStrategy::default()),
        (
            "random-search",
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 60,
                seed: 0xC0FFEE,
            }),
        ),
    ]
}

fn albireo_system(strategy: MappingStrategy) -> System {
    System::new(
        AlbireoConfig::new(ScalingProfile::Aggressive).build_arch(),
        strategy,
    )
}

/// The headline property: for both mapping-strategy families, a session
/// warm-started from disk reproduces the cold session's evaluation of a
/// transformer network bit for bit — per-layer mappings, analyses and
/// energy items included — while answering every lookup from the
/// snapshot.
#[test]
fn disk_warm_session_is_bit_identical_to_cold() {
    let net = networks::bert_base();
    let options = NetworkOptions::baseline();
    for (name, strategy) in strategies() {
        let dir = scratch_dir(name);

        let cache = EvalCache::persistent_in(&dir);
        let cold_session =
            EvalSession::new(albireo_system(strategy.clone())).with_cache(Arc::clone(&cache));
        let cold = cold_session
            .evaluate_network(&net, &options)
            .expect("cold evaluation maps");
        assert!(
            cold_session.cache_stats().misses > 0,
            "{name}: cold run searched"
        );
        cache.save().expect("snapshot writes");
        drop(cold_session);
        drop(cache);

        let cache = EvalCache::persistent_in(&dir);
        assert!(!cache.is_empty(), "{name}: snapshot warm-started the cache");
        let warm_session =
            EvalSession::new(albireo_system(strategy.clone())).with_cache(Arc::clone(&cache));
        let warm = warm_session
            .evaluate_network(&net, &options)
            .expect("warm evaluation maps");
        assert_eq!(
            warm_session.cache_stats().misses,
            0,
            "{name}: warm-from-disk run re-ran a search"
        );

        assert_eq!(
            cold.energy.total().picojoules().to_bits(),
            warm.energy.total().picojoules().to_bits(),
            "{name}: total energy drifted"
        );
        assert_eq!(cold.cycles.to_bits(), warm.cycles.to_bits(), "{name}");
        for (c, w) in cold.per_layer.iter().zip(&warm.per_layer) {
            assert_eq!(c.layer_name, w.layer_name, "{name}");
            assert_eq!(
                c.mapping, w.mapping,
                "{name}: {} mapping drifted",
                c.layer_name
            );
            assert_eq!(
                c.analysis, w.analysis,
                "{name}: {} analysis drifted",
                c.layer_name
            );
            assert_eq!(
                c.energy, w.energy,
                "{name}: {} energy drifted",
                c.layer_name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Every damaged-snapshot shape — truncation at every byte boundary, a
/// flipped payload byte, plain garbage — cold-starts silently: the
/// session still evaluates, it just searches again.
#[test]
fn damaged_snapshots_degrade_to_cold_without_panicking() {
    let layer = Layer::conv2d("probe", 1, 16, 8, 8, 8, 3, 3);
    let dir = scratch_dir("damage");

    // Produce one valid snapshot to mutilate.
    let cache = EvalCache::persistent_in(&dir);
    EvalSession::new(albireo_system(MappingStrategy::default()))
        .with_cache(Arc::clone(&cache))
        .evaluate_layer(&layer)
        .expect("probe maps");
    cache.save().expect("snapshot writes");
    drop(cache);
    let info = inspect_cache_dir(&dir).expect("valid snapshot");
    assert_eq!(info.entries, 1);
    let snapshot = std::fs::read(&info.path).expect("snapshot readable");

    let mut variants: Vec<Vec<u8>> = Vec::new();
    for len in 0..snapshot.len() {
        variants.push(snapshot[..len].to_vec());
    }
    for i in 0..snapshot.len() {
        let mut flipped = snapshot.clone();
        flipped[i] ^= 0x40;
        variants.push(flipped);
    }
    variants.push(b"not a snapshot".to_vec());

    for (i, bytes) in variants.iter().enumerate() {
        std::fs::write(&info.path, bytes).expect("write damaged snapshot");
        let cache = EvalCache::persistent_in(&dir);
        assert!(
            cache.is_empty(),
            "damaged variant {i} ({} bytes) must cold-start",
            bytes.len()
        );
        let session = EvalSession::new(albireo_system(MappingStrategy::default()))
            .with_cache(Arc::clone(&cache));
        session
            .evaluate_layer(&layer)
            .expect("cold path still maps");
        assert_eq!(session.cache_stats().misses, 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot flush that cannot reach the disk must surface: `save`
/// returns the I/O error, and the flush-on-drop path reports it on
/// stderr instead of swallowing it (and must not panic). The failure is
/// provoked by pointing the cache at a "directory" whose parent is a
/// regular file, which fails for root and unprivileged users alike —
/// unlike permission bits, which root ignores.
#[test]
fn failed_snapshot_flush_is_reported_not_swallowed() {
    let dir = scratch_dir("flushfail");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let blocker = dir.join("not-a-directory");
    std::fs::write(&blocker, b"plain file").expect("blocker file");

    let cache = EvalCache::persistent_in(&blocker.join("sub"));
    let session =
        EvalSession::new(albireo_system(MappingStrategy::default())).with_cache(Arc::clone(&cache));
    session
        .evaluate_layer(&Layer::gemv("probe", 1, 32, 32))
        .expect("evaluation itself is unaffected by a bad cache dir");
    drop(session);

    let err = cache.save().expect_err("snapshot write into a file-as-dir");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::NotADirectory | std::io::ErrorKind::NotFound
        ),
        "unexpected error kind: {err:?}"
    );

    // The cache is still dirty, so the last drop retries the flush and
    // takes the warning path; the test only requires it not to panic
    // (the message lands on stderr, which libtest passes through).
    drop(cache);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The round trip holds for arbitrary layer shapes, not just the
    /// bundled networks: evaluate → save → reload-from-disk → evaluate
    /// is a bit-identical warm hit for conv and GEMM layers alike.
    #[test]
    fn arbitrary_layers_round_trip_through_the_snapshot(
        m in 1usize..64,
        c in 1usize..64,
        pq in 1usize..16,
        rs in 1usize..=3,
        gemm in 0usize..2,
    ) {
        let layer = if gemm == 1 {
            Layer::matmul("probe", 1, m, c, pq)
        } else {
            Layer::conv2d("probe", 1, m, c, pq, pq, rs, rs)
        };
        let dir = scratch_dir("prop");

        let cache = EvalCache::persistent_in(&dir);
        let cold_session = EvalSession::new(albireo_system(MappingStrategy::default()))
            .with_cache(Arc::clone(&cache));
        let cold = cold_session.evaluate_layer(&layer).expect("cold maps");
        cache.save().expect("snapshot writes");
        drop(cold_session);
        drop(cache);

        let cache = EvalCache::persistent_in(&dir);
        let warm_session = EvalSession::new(albireo_system(MappingStrategy::default()))
            .with_cache(Arc::clone(&cache));
        let warm = warm_session.evaluate_layer(&layer).expect("warm maps");
        prop_assert_eq!(warm_session.cache_stats().misses, 0);
        prop_assert_eq!(warm_session.cache_stats().hits, 1);
        prop_assert_eq!(&cold.mapping, &warm.mapping);
        prop_assert_eq!(&cold.analysis, &warm.analysis);
        prop_assert_eq!(&cold.energy, &warm.energy);
        prop_assert_eq!(
            cold.energy.total().picojoules().to_bits(),
            warm.energy.total().picojoules().to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
