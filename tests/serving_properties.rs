//! Property and invariant tests for the continuous-batching scheduler
//! and its lowering.
//!
//! The pinned properties: every request's tokens are produced exactly
//! once (with consecutive KV lengths starting at its prompt), step MACs
//! equal the sum of each active request's padded per-token work,
//! occupancy never exceeds capacity (and never idles while work waits),
//! and a fully-uniform mix through a single slot reproduces PR 4's
//! `decode_trace` totals bit-identically through the evaluator.
//!
//! The open-loop event schedule adds its own laws: seeded arrivals are
//! deterministic, each prompt prefills exactly once in contiguous
//! chunks, prefill+decode occupancy respects capacity, the evaluator
//! charges every chunk exactly once, and a closed-loop FIFO
//! resident-prefill configuration reproduces the legacy
//! `BatchSchedule` slot for slot.

use lumen::arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen::core::serving::{serving_sweep, serving_trace};
use lumen::core::{EvalSession, MappingStrategy, NetworkOptions, System};
use lumen::units::{Energy, Frequency};
use lumen::workload::serving::{
    ArrivalProcess, BatchSchedule, KvLayout, PageTable, PrefillMode, Request, RequestMix,
    ServingConfig, ServingModel, ServingSchedule,
};
use lumen::workload::{networks, AdmissionPolicy, Dim, DimSet, TensorSet};
use proptest::prelude::*;
use std::collections::HashMap;

fn toy_arch() -> Architecture {
    ArchBuilder::new("serving-toy", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("toy architecture is valid")
}

/// Every request's tokens are produced exactly once: across the whole
/// schedule, request `r` appears in exactly `output` steps, and the KV
/// lengths it is scheduled at are `prompt, prompt+1, ..,
/// prompt+output-1` in execution order.
fn assert_tokens_exactly_once(mix: &RequestMix, schedule: &BatchSchedule) {
    let mut seen: HashMap<usize, Vec<usize>> = HashMap::new();
    for step in schedule.steps() {
        for slot in step.active() {
            seen.entry(slot.request).or_default().push(slot.kv_len);
        }
    }
    assert_eq!(seen.len(), mix.len(), "every request was scheduled");
    for (r, request) in mix.requests().iter().enumerate() {
        let kvs = &seen[&r];
        assert_eq!(kvs.len(), request.output, "request {r} token count");
        let expected: Vec<usize> = (request.prompt..request.prompt + request.output).collect();
        assert_eq!(kvs, &expected, "request {r} cache grows one token/step");
    }
}

#[test]
fn every_token_is_produced_exactly_once() {
    let mixes = [
        RequestMix::uniform(7, 100, 5),
        RequestMix::bimodal(42, 20, (64, 16), (512, 48), 25),
        RequestMix::long_tail(42, 20, (32, 256), 8, 4),
        RequestMix::custom(
            "ragged",
            vec![
                Request::new(0, 1),
                Request::new(1000, 3),
                Request::new(5, 17),
            ],
        ),
    ];
    for mix in &mixes {
        for capacity in [1, 2, 5, 64] {
            let schedule = BatchSchedule::build(mix, capacity);
            assert_tokens_exactly_once(mix, &schedule);
            assert_eq!(
                schedule.total_tokens(),
                mix.total_output_tokens(),
                "{} cap {capacity}",
                mix.name()
            );
        }
    }
}

#[test]
fn occupancy_never_exceeds_capacity_and_never_idles_waiting_work() {
    let mix = RequestMix::bimodal(3, 25, (64, 4), (256, 30), 40);
    for capacity in [1, 3, 8, 25, 100] {
        let schedule = BatchSchedule::build(&mix, capacity);
        let mut retired = 0usize;
        let mut admitted: Vec<bool> = vec![false; mix.len()];
        for (i, step) in schedule.steps().iter().enumerate() {
            assert!(
                step.occupancy() <= capacity,
                "cap {capacity} step {i}: occupancy {}",
                step.occupancy()
            );
            assert!(step.occupancy() > 0, "no empty steps");
            for slot in step.active() {
                admitted[slot.request] = true;
            }
            // Work-conserving: a slot sits free only once the queue is
            // exhausted (admission is FIFO at step start).
            let waiting = admitted.iter().filter(|&&a| !a).count();
            if step.occupancy() < capacity {
                assert_eq!(waiting, 0, "cap {capacity} step {i}: idle slot with queue");
            }
            retired += step
                .active()
                .iter()
                .filter(|s| {
                    s.kv_len + 1
                        == mix.requests()[s.request].prompt + mix.requests()[s.request].output
                })
                .count();
        }
        assert_eq!(retired, mix.len(), "every request retires exactly once");
    }
}

#[test]
fn step_macs_equal_the_sum_over_the_active_set() {
    let model = ServingModel::gpt2_small();
    let mix = RequestMix::long_tail(9, 16, (64, 400), 8, 3);
    let schedule = BatchSchedule::build(&mix, 5);
    for bucket in [1, 64, 256] {
        for step in schedule.steps() {
            let kv = step.kv_lens();
            let net = model.lower_step(&kv, bucket);
            // The network's MACs are exactly the sum of each active
            // request's padded per-token work — no cross-request terms.
            let per_request: u64 = kv.iter().map(|&k| model.step_macs(&[k], bucket)).sum();
            assert_eq!(net.total_macs(), per_request, "bucket {bucket}");
            assert_eq!(net.total_macs(), model.step_macs(&kv, bucket));
        }
    }
}

/// The PR 4 equivalence: a uniform single-slot schedule is exactly a
/// `decode_trace`, and the evaluator agrees bit for bit — same layer
/// signatures step by step, so one session evaluates both from the same
/// cache entries and the per-step energies/cycles match to the last bit.
#[test]
fn uniform_single_slot_schedule_matches_decode_trace_bit_identically() {
    let (prompt, steps, bucket) = (100usize, 24usize, 16usize);
    let mix = RequestMix::uniform(1, prompt, steps);
    let schedule = BatchSchedule::build(&mix, 1);
    assert_eq!(schedule.total_steps(), steps);

    let model = ServingModel::gpt2_small();
    let session = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    let serving = serving_sweep(
        &session,
        &model,
        &schedule,
        bucket,
        &NetworkOptions::baseline(),
    )
    .expect("schedule evaluates");

    let trace: Vec<_> = networks::gpt2_small_decode_trace(prompt, steps, bucket).collect();
    assert_eq!(serving.points.len(), trace.len());
    for (point, (kv_len, decode_net)) in serving.points.iter().zip(&trace) {
        let decode_eval = session
            .evaluate_network(decode_net, &NetworkOptions::baseline())
            .expect("decode step evaluates");
        assert_eq!(point.occupancy, 1);
        assert_eq!(point.macs, decode_eval.macs, "kv={kv_len}");
        assert_eq!(
            point.energy.picojoules().to_bits(),
            decode_eval.energy.total().picojoules().to_bits(),
            "kv={kv_len}: serving step energy drifted from decode_trace"
        );
        assert_eq!(
            point.cycles.to_bits(),
            decode_eval.cycles.to_bits(),
            "kv={kv_len}: serving step cycles drifted from decode_trace"
        );
    }
    // Totals follow: the schedule is the trace.
    let trace_macs: u64 = trace.iter().map(|(_, n)| n.total_macs()).sum();
    assert_eq!(serving.total_macs(), trace_macs);
}

// --- open-loop event schedule (PR 7) --------------------------------

/// Conservation for the event-driven scheduler: each admitted request
/// prefills its prompt exactly once (contiguous chunks, no overlap) and
/// decodes its output exactly once at consecutive KV lengths; the
/// per-step slot count (prefill + decode) never exceeds capacity.
fn assert_event_schedule_conserves(mix: &RequestMix, schedule: &ServingSchedule) {
    let capacity = schedule.capacity();
    let mut prefilled: HashMap<usize, usize> = HashMap::new();
    let mut decoded: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, step) in schedule.steps().iter().enumerate() {
        assert!(step.occupancy() >= 1, "no empty steps");
        assert!(
            step.occupancy() <= capacity,
            "step {i}: occupancy {} over capacity {capacity}",
            step.occupancy()
        );
        for slot in step.prefill() {
            let done = prefilled.entry(slot.request).or_insert(0);
            assert_eq!(
                slot.cached, *done,
                "step {i}: request {} prefill chunks are contiguous",
                slot.request
            );
            assert!(slot.chunk > 0, "prefill chunks are non-empty");
            *done += slot.chunk;
        }
        for slot in step.decode() {
            decoded.entry(slot.request).or_default().push(slot.kv_len);
        }
    }
    assert_eq!(decoded.len(), mix.len(), "every request decodes");
    for (r, request) in mix.requests().iter().enumerate() {
        assert_eq!(
            prefilled.get(&r).copied().unwrap_or(0),
            request.prompt,
            "request {r}: prompt prefilled exactly once"
        );
        let expected: Vec<usize> = (request.prompt..request.prompt + request.output).collect();
        assert_eq!(&decoded[&r], &expected, "request {r} decode KV lengths");
    }
}

#[test]
fn event_schedule_conserves_tokens_under_every_arrival_and_policy() {
    let mix = RequestMix::bimodal(11, 18, (64, 6), (300, 24), 30);
    let arrivals = [
        ArrivalProcess::ClosedLoop,
        ArrivalProcess::poisson(0.2, 0xD00D),
        ArrivalProcess::bursty(0.05, 16, 3, 0xD00D),
        ArrivalProcess::diurnal(0.05, 0.6, 40, 0xD00D),
    ];
    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::ShortestPrompt,
        AdmissionPolicy::SloAware {
            interactive_prompt: 128,
            slack: 8,
        },
    ];
    for arrival in &arrivals {
        for policy in &policies {
            for chunk in [None, Some(64)] {
                let config = ServingConfig::new(3)
                    .with_arrival(arrival.clone())
                    .with_policy(*policy)
                    .with_prefill(PrefillMode::OnAdmission { chunk });
                let schedule = ServingSchedule::build(&mix, &config);
                assert_event_schedule_conserves(&mix, &schedule);
            }
        }
    }
}

/// Seeded arrivals are a pure function of their inputs: rebuilding the
/// same open-loop schedule gives step-for-step identical walls, prefill
/// events and decode slots.
#[test]
fn open_loop_schedules_are_deterministic() {
    let mix = RequestMix::long_tail(5, 12, (32, 200), 10, 3);
    let config = ServingConfig::new(2)
        .with_arrival(ArrivalProcess::poisson(0.15, 0xABCD))
        .with_policy(AdmissionPolicy::ShortestPrompt)
        .with_prefill(PrefillMode::OnAdmission { chunk: Some(48) });
    let a = ServingSchedule::build(&mix, &config);
    let b = ServingSchedule::build(&mix, &config);
    assert_eq!(a.arrivals(), b.arrivals());
    assert_eq!(a.total_steps(), b.total_steps());
    for (sa, sb) in a.steps().iter().zip(b.steps()) {
        assert_eq!(sa.wall(), sb.wall());
        assert_eq!(sa.prefill(), sb.prefill());
        assert_eq!(sa.decode(), sb.decode());
    }
}

/// The evaluator charges each prefill chunk exactly once: trace MACs
/// equal per-request prefill closed forms plus the decode step sum —
/// and the worker count does not change a bit of it.
#[test]
fn serving_trace_charges_prefill_exactly_once_and_is_thread_stable() {
    let (bucket, chunk) = (32usize, Some(96usize));
    let mix = RequestMix::uniform(3, 150, 4);
    let model = ServingModel::gpt2_small();
    let config = ServingConfig::new(2)
        .with_arrival(ArrivalProcess::poisson(0.1, 0xBEEF))
        .with_prefill(PrefillMode::OnAdmission { chunk });
    let schedule = ServingSchedule::build(&mix, &config);

    let session = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    let eval = serving_trace(
        &session,
        &model,
        &schedule,
        bucket,
        &NetworkOptions::baseline(),
    )
    .expect("trace evaluates");

    let prefill: u64 = mix
        .requests()
        .iter()
        .map(|r| model.prefill_macs(r.prompt, chunk, bucket))
        .sum();
    let decode: u64 = schedule
        .steps()
        .iter()
        .map(|s| model.step_macs(&s.decode_kv_lens(), bucket))
        .sum();
    assert_eq!(eval.total_macs(), prefill + decode);

    // The fanned-out trace is bit-identical to a sequential loop over
    // the same step networks through the same session.
    for (point, step) in eval.points.iter().zip(schedule.steps()) {
        let net = model.lower_serving_step(step, bucket);
        let reference = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .expect("step evaluates");
        assert_eq!(point.macs, reference.macs, "wall {}", step.wall());
        assert_eq!(
            point.energy.picojoules().to_bits(),
            reference.energy.total().picojoules().to_bits(),
            "wall {}",
            step.wall()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The PR 5 equivalence: a closed-loop FIFO resident-prefill event
    /// schedule is the legacy `BatchSchedule` loop, slot for slot, for
    /// any seeded population.
    #[test]
    fn closed_loop_event_schedule_matches_legacy_batch_schedule(
        seed in 0usize..1000,
        count in 1usize..=24,
        capacity in 1usize..=12,
        long_percent in 0usize..=100,
    ) {
        let mix = RequestMix::bimodal(seed as u64, count, (16, 3), (128, 11), long_percent);
        let legacy = BatchSchedule::build(&mix, capacity);
        let config = ServingConfig::new(capacity).with_prefill(PrefillMode::Resident);
        let event = ServingSchedule::build(&mix, &config);
        prop_assert_eq!(legacy.total_steps(), event.total_steps());
        for (b, s) in legacy.steps().iter().zip(event.steps()) {
            prop_assert!(s.prefill().is_empty());
            prop_assert_eq!(b.active(), s.decode());
        }
    }

    /// Random mixes and capacities: the scheduler's conservation laws
    /// hold for any seeded population.
    #[test]
    fn scheduler_conserves_tokens(
        seed in 0usize..1000,
        count in 1usize..=24,
        capacity in 1usize..=12,
        long_percent in 0usize..=100,
    ) {
        let mix = RequestMix::bimodal(seed as u64, count, (16, 3), (128, 11), long_percent);
        let schedule = BatchSchedule::build(&mix, capacity);
        prop_assert_eq!(schedule.total_tokens(), mix.total_output_tokens());
        prop_assert!(schedule
            .steps()
            .iter()
            .all(|s| s.occupancy() >= 1 && s.occupancy() <= capacity));
        prop_assert!(schedule.mean_occupancy() > 0.0 && schedule.mean_occupancy() <= 1.0);
        // Steps are bounded: perfect packing below, serial above.
        let tokens = mix.total_output_tokens() as usize;
        prop_assert!(schedule.total_steps() >= tokens.div_ceil(capacity));
        prop_assert!(schedule.total_steps() <= tokens);
        assert_tokens_exactly_once(&mix, &schedule);
    }

    /// Random active sets: the lowering's closed form matches the layer
    /// sum, and the bucketed composition covers the whole active set.
    #[test]
    fn lowering_macs_match_for_random_active_sets(
        seed in 0usize..1000,
        occupancy in 1usize..=8,
        bucket_pow in 0usize..=8,
    ) {
        let bucket = 1usize << bucket_pow;
        // A deterministic pseudo-random active set from the seed.
        let kv: Vec<usize> = (0..occupancy)
            .map(|i| (seed.wrapping_mul(31).wrapping_add(i * 97)) % 700)
            .collect();
        let model = ServingModel::new("toy", 64, 4, 128, 2, 1000);
        let net = model.lower_step(&kv, bucket);
        prop_assert_eq!(net.total_macs(), model.step_macs(&kv, bucket));
        let composition = ServingModel::bucketed_composition(&kv, bucket);
        prop_assert_eq!(
            composition.iter().map(|&(_, c)| c).sum::<usize>(),
            occupancy
        );
        // Group count bounds the per-step layer count: 8 layers per
        // block + LM head per group.
        prop_assert_eq!(
            net.layers().len(),
            composition.len() * (2 * 8 + 1)
        );
        for (len, _) in composition {
            prop_assert_eq!(len % bucket, 0, "padded lengths are bucket multiples");
        }
    }
}

// --- paged KV residency (PR 9) --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Page allocation covers the cache — `pages × page_size ≥ kv_len`
    /// — and wastes strictly less than one page per request.
    #[test]
    fn page_allocation_covers_the_cache(
        page in 1usize..=512,
        kv in 0usize..=4096,
    ) {
        let t = PageTable::new(page);
        prop_assert!(t.pages_for(kv) * page >= kv);
        prop_assert_eq!(t.allocated_tokens(kv), t.pages_for(kv) * page);
        prop_assert!(t.allocated_tokens(kv) >= kv);
        prop_assert!(t.fragmentation(kv) < page);
        prop_assert_eq!(t.allocated_tokens(kv) - t.fragmentation(kv), kv);
    }

    /// A one-token page is exact per-token residency: zero
    /// fragmentation and attend lengths of exactly `kv + 1`.
    #[test]
    fn unit_page_recovers_exact_residency(kv in 0usize..=4096) {
        let t = PageTable::new(1);
        prop_assert_eq!(t.allocated_tokens(kv), kv);
        prop_assert_eq!(t.fragmentation(kv), 0);
        prop_assert_eq!(t.attend_len(kv), kv + 1);
    }

    /// Whenever the page tiles the bucket, bucketed accounting is a
    /// sound upper bound on paged residency — per cache length, per
    /// scheduled step, and through the lowering's MAC closed forms.
    #[test]
    fn bucketed_is_an_upper_bound_when_the_page_tiles_the_bucket(
        page_pow in 0usize..=6,
        factor in 1usize..=8,
        seed in 0usize..1000,
        count in 1usize..=16,
        capacity in 1usize..=8,
    ) {
        let page = 1usize << page_pow;
        let bucket = page * factor;
        let paged = PageTable::new(page);
        let bucketed = PageTable::new(bucket);
        for kv in 0..=600 {
            prop_assert!(paged.allocated_tokens(kv) <= bucketed.allocated_tokens(kv));
            prop_assert!(paged.attend_len(kv) <= bucketed.attend_len(kv));
        }
        let mix = RequestMix::bimodal(seed as u64, count, (16, 3), (128, 11), 25);
        let config = ServingConfig::new(capacity)
            .with_prefill(PrefillMode::OnAdmission { chunk: Some(32) });
        let schedule = ServingSchedule::build(&mix, &config);
        for step in schedule.steps() {
            let p = paged.step_residency(step);
            let b = bucketed.step_residency(step);
            prop_assert_eq!(p.used_tokens, b.used_tokens);
            prop_assert!(p.allocated_tokens <= b.allocated_tokens);
            prop_assert!(p.used_tokens <= p.allocated_tokens);
        }
        // The paged lowering's MACs match its closed form and never
        // exceed the bucketed lowering's.
        let model = ServingModel::new("toy", 64, 4, 128, 2, 1000);
        let paged_layout = KvLayout::Paged(paged);
        let bucketed_layout = KvLayout::Bucketed { bucket };
        for step in schedule.steps().iter().take(8) {
            let net = model.lower_serving_step_with(step, &paged_layout);
            prop_assert_eq!(
                net.total_macs(),
                model.serving_step_macs_with(step, &paged_layout)
            );
            prop_assert!(
                model.serving_step_macs_with(step, &paged_layout)
                    <= model.serving_step_macs_with(step, &bucketed_layout)
            );
        }
    }
}
