//! Property and invariant tests for fleet-scale serving on the unified
//! scenario API.
//!
//! The pinned properties: every router partitions the arrival stream —
//! each request lands on exactly one instance and none are dropped, at
//! dispatch time and again in the evaluated traces; a fleet of one is
//! *bit-identical* to tracing the template scenario directly (the
//! routed sub-scenario replays the same arrival draws, so nothing is
//! re-rolled); the [`ServingScenario`] builder accepts exactly the
//! combinations its typed errors do not reject; the CLI flag surface
//! lowers onto that builder (every invalid combination is a typed
//! error, not a bespoke string); and a fleet sharing one eval session
//! dedupes identical shards by layer signature, which the capacity
//! plan's hit rate makes observable.

use lumen::arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen::core::{
    fleet_trace, scenario_trace, EvalSession, FleetInstance, MappingStrategy, NetworkOptions,
    System,
};
use lumen::units::{Energy, Frequency};
use lumen::workload::{
    AdmissionPolicy, ArrivalProcess, Dim, DimSet, Fleet, FleetRouter, RequestMix, ServingError,
    ServingModel, ServingScenario, TensorSet,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn toy_arch() -> Architecture {
    ArchBuilder::new("fleet-toy", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("toy architecture is valid")
}

fn template() -> ServingScenario {
    ServingScenario::builder(RequestMix::bimodal(0xF1EE, 18, (48, 8), (200, 24), 30), 3)
        .kv_bucket(32)
        .arrival(ArrivalProcess::poisson(0.2, 0xD00D))
        .policy(AdmissionPolicy::Fifo)
        .prefill_chunk(64)
        .build()
        .expect("the fleet test template is valid")
}

const ROUTERS: [FleetRouter; 3] = [
    FleetRouter::RoundRobin,
    FleetRouter::JoinShortestQueue,
    FleetRouter::LeastLoadedKv,
];

/// Dispatch is a partition: across every router and fleet size, each
/// global request index appears in exactly one instance's assignment.
#[test]
fn every_router_partitions_the_stream() {
    let template = template();
    let total = template.mix().len();
    for router in ROUTERS {
        for instances in [1, 2, 3, 7] {
            let fleet = Fleet::uniform(template.clone(), router, instances);
            let assignments = fleet.dispatch().expect("the template stream dispatches");
            assert_eq!(assignments.len(), instances, "{router} x{instances}");
            let mut seen = BTreeSet::new();
            for assignment in &assignments {
                for &request in &assignment.requests {
                    assert!(
                        seen.insert(request),
                        "{router} x{instances}: request {request} routed twice"
                    );
                }
                // An assignment's scenario exists iff it has requests.
                assert_eq!(
                    assignment.scenario.is_some(),
                    !assignment.requests.is_empty()
                );
            }
            let expected: BTreeSet<usize> = (0..total).collect();
            assert_eq!(seen, expected, "{router} x{instances}: requests dropped");
        }
    }
}

/// Conservation survives evaluation: the merged fleet trace serves
/// every request and generates exactly the mix's output tokens, for
/// every router.
#[test]
fn fleet_traces_conserve_requests_and_tokens() {
    let template = template();
    let model = ServingModel::gpt2_small();
    let session = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    let options = NetworkOptions::baseline();
    for router in ROUTERS {
        let fleet = Fleet::uniform(template.clone(), router, 3);
        let assignments = fleet.dispatch().expect("the template stream dispatches");
        let members: Vec<FleetInstance<'_>> = assignments
            .iter()
            .map(|assignment| FleetInstance {
                session: &session,
                model: &model,
                assignment,
            })
            .collect();
        let evaluation = fleet_trace(&members, &options).expect("the fleet evaluates");
        assert_eq!(
            evaluation.served_requests(),
            template.mix().len(),
            "{router}: every request served exactly once"
        );
        assert_eq!(
            evaluation.total_tokens(),
            template.mix().total_output_tokens(),
            "{router}: token conservation"
        );
    }
}

/// A fleet of one *is* the single-instance trace: same step energies
/// and cycles to the bit, same per-request latencies. The routed
/// sub-scenario replays the template's arrival draws literally, so
/// nothing is re-rolled.
#[test]
fn fleet_of_one_is_bit_identical_to_the_single_instance_trace() {
    let template = template();
    let model = ServingModel::gpt2_small();
    let session = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    let options = NetworkOptions::baseline();

    let direct = scenario_trace(&session, &model, &template, &options)
        .expect("the template traces directly");

    for router in ROUTERS {
        let fleet = Fleet::uniform(template.clone(), router, 1);
        let assignments = fleet.dispatch().expect("a fleet of one dispatches");
        let members = [FleetInstance {
            session: &session,
            model: &model,
            assignment: &assignments[0],
        }];
        let evaluation = fleet_trace(&members, &options).expect("the fleet evaluates");
        let trace = evaluation.instances[0]
            .evaluation
            .as_ref()
            .expect("one instance serves the whole stream");

        assert_eq!(trace.points.len(), direct.points.len(), "{router}");
        for (i, (fleet_point, direct_point)) in trace.points.iter().zip(&direct.points).enumerate()
        {
            assert_eq!(fleet_point.occupancy, direct_point.occupancy, "step {i}");
            assert_eq!(fleet_point.macs, direct_point.macs, "step {i}");
            assert_eq!(
                fleet_point.energy.picojoules().to_bits(),
                direct_point.energy.picojoules().to_bits(),
                "{router} step {i}: energy drifted"
            );
            assert_eq!(
                fleet_point.cycles.to_bits(),
                direct_point.cycles.to_bits(),
                "{router} step {i}: cycles drifted"
            );
        }
        assert_eq!(trace.requests.len(), direct.requests.len());
        for (fleet_req, direct_req) in trace.requests.iter().zip(&direct.requests) {
            assert_eq!(fleet_req.request, direct_req.request);
            assert_eq!(
                fleet_req.ttft_cycles().to_bits(),
                direct_req.ttft_cycles().to_bits(),
                "{router} request {}: TTFT drifted",
                fleet_req.request
            );
            assert_eq!(fleet_req.token_gap_cycles, direct_req.token_gap_cycles);
        }
        assert_eq!(
            evaluation.total_energy().picojoules().to_bits(),
            direct.total_energy().picojoules().to_bits(),
            "{router}: fleet-of-1 energy drifted"
        );
    }
}

/// A heterogeneous fleet traces instances at their own clocks: two
/// sessions with different clock rates produce a pooled percentile set
/// that uses each instance's period, not a global one.
#[test]
fn heterogeneous_fleet_pools_latencies_at_each_instances_clock() {
    let template = template();
    let model = ServingModel::gpt2_small();
    let slow = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    let fast_arch = ArchBuilder::new("fleet-toy-fast", Frequency::from_gigahertz(2.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("fast toy architecture is valid");
    let fast = EvalSession::new(System::new(fast_arch, MappingStrategy::default()));

    let fleet = Fleet::uniform(template.clone(), FleetRouter::RoundRobin, 2);
    let assignments = fleet.dispatch().expect("the template stream dispatches");
    let sessions = [&slow, &fast];
    let members: Vec<FleetInstance<'_>> = assignments
        .iter()
        .zip(sessions)
        .map(|(assignment, session)| FleetInstance {
            session,
            model: &model,
            assignment,
        })
        .collect();
    let evaluation = fleet_trace(&members, &options_baseline()).expect("the fleet evaluates");
    assert_eq!(
        evaluation.instances[0].clock,
        Frequency::from_gigahertz(1.0)
    );
    assert_eq!(
        evaluation.instances[1].clock,
        Frequency::from_gigahertz(2.0)
    );
    assert_eq!(evaluation.served_requests(), template.mix().len());
    // The same steps at a doubled clock halve their wall time; the
    // pooled p99 must sit strictly below an all-slow fleet's.
    let all_slow: Vec<FleetInstance<'_>> = assignments
        .iter()
        .map(|assignment| FleetInstance {
            session: &slow,
            model: &model,
            assignment,
        })
        .collect();
    let slow_eval = fleet_trace(&all_slow, &options_baseline()).expect("the fleet evaluates");
    assert!(
        evaluation.ttft_percentiles().p99 < slow_eval.ttft_percentiles().p99,
        "a faster instance should pull the pooled tail down"
    );
}

fn options_baseline() -> NetworkOptions {
    NetworkOptions::baseline()
}

/// The capacity plan's shared-session accounting is observable: three
/// instances decoding the same model dedupe their identical steps by
/// layer signature, so the fleet-wide hit rate is near one — far above
/// what any single instance could reach alone.
#[test]
fn capacity_plan_fleet_shares_one_eval_cache() {
    use lumen::albireo::experiments;
    let plan = experiments::capacity_plan_study(
        lumen::albireo::ScalingProfile::Conservative,
        experiments::FLEET_INSTANCES,
        FleetRouter::RoundRobin,
        experiments::fleet_arrival(),
    )
    .expect("the capacity plan evaluates");
    assert!(plan.trace_layer_evals > 0, "the plan evaluated layers");
    assert!(
        plan.trace_mapping_searches < plan.trace_layer_evals / 10,
        "identical shards should dedupe: {} searches for {} evals",
        plan.trace_mapping_searches,
        plan.trace_layer_evals
    );
    assert!(
        plan.trace_hit_rate() > 0.9,
        "shared-session hit rate {:.3} should be near one",
        plan.trace_hit_rate()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder accepts exactly what its typed errors do not
    /// reject: for arbitrary knob combinations, `build()` either
    /// yields a scenario whose accessors echo the inputs, or the one
    /// error the validation order promises. Raw draws of 0 encode
    /// "knob not set" for the optional knobs.
    #[test]
    fn builder_accepts_exactly_the_valid_combinations(
        capacity in 0usize..6,
        kv_bucket in 0usize..300,
        page_raw in 0usize..81,
        shared in 0usize..80,
        chunk_raw in 0usize..129,
        ctx_raw in 0usize..3,
    ) {
        let page = page_raw.checked_sub(1);
        let chunk = chunk_raw.checked_sub(1);
        let max_context = [None, Some(100), Some(300)][ctx_raw];
        let mix = RequestMix::bimodal(7, 8, (48, 8), (200, 24), 50);
        let min_prompt = mix.requests().iter().map(|r| r.prompt).min().unwrap();
        let worst_needed = mix.requests().iter().map(|r| r.prompt + 1).max().unwrap();
        let mut builder = ServingScenario::builder(mix, capacity).kv_bucket(kv_bucket);
        if let Some(page) = page {
            builder = builder.kv_page(page);
        }
        if let Some(chunk) = chunk {
            builder = builder.prefill_chunk(chunk);
        }
        if let Some(max_context) = max_context {
            builder = builder.max_context(max_context);
        }
        let result = builder.shared_prefix(shared).build();

        // The validation ladder, in order.
        if capacity == 0 {
            prop_assert_eq!(result.unwrap_err(), ServingError::ZeroCapacity);
        } else if kv_bucket == 0 {
            prop_assert_eq!(result.unwrap_err(), ServingError::ZeroKvBucket);
        } else if page == Some(0) {
            prop_assert_eq!(result.unwrap_err(), ServingError::ZeroKvPage);
        } else if chunk == Some(0) {
            prop_assert_eq!(result.unwrap_err(), ServingError::ZeroPrefillChunk);
        } else if shared > 0 && page.is_none() {
            prop_assert_eq!(
                result.unwrap_err(),
                ServingError::SharedPrefixRequiresPagedKv
            );
        } else if shared > min_prompt {
            prop_assert_eq!(
                result.unwrap_err(),
                ServingError::SharedPrefixExceedsPrompt { shared, min_prompt }
            );
        } else if max_context.is_some_and(|ctx| worst_needed > ctx) {
            prop_assert!(matches!(
                result,
                Err(ServingError::ContextOverflow { .. })
            ));
        } else {
            let scenario = result.expect("the combination is valid");
            prop_assert_eq!(scenario.capacity(), capacity);
            prop_assert_eq!(scenario.kv_bucket(), kv_bucket);
            prop_assert_eq!(scenario.kv_page(), page);
            prop_assert_eq!(scenario.shared_prefix(), shared);
            prop_assert_eq!(scenario.max_context(), max_context);
        }
    }

    /// Dispatch never loses a request, whatever the fleet size.
    #[test]
    fn dispatch_partitions_for_any_fleet_size(instances in 1usize..12) {
        let template = template();
        let total = template.mix().len();
        for router in ROUTERS {
            let fleet = Fleet::uniform(template.clone(), router, instances);
            let assignments = fleet.dispatch().expect("dispatches");
            let routed: usize = assignments.iter().map(|a| a.requests.len()).sum();
            prop_assert_eq!(routed, total);
        }
    }
}

/// The CLI flag surface lowers onto the builder: every invalid
/// combination is the serving layer's typed error (satellite: no
/// hand-validated combos survive in the binary).
#[test]
fn cli_flag_matrix_rejects_invalid_combinations_with_typed_errors() {
    use lumen::albireo::flags::{parse_fleet_flags, parse_serving_flags, FlagError, ServingPlan};
    let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| (*s).to_string()).collect() };

    // Valid combinations resolve to plans.
    assert!(matches!(
        parse_serving_flags(&args(&["serving"])),
        Ok(ServingPlan::ClosedLoopStudy)
    ));
    assert!(matches!(
        parse_serving_flags(&args(&[
            "serving",
            "--arrival",
            "bursty",
            "--policy",
            "slo"
        ])),
        Ok(ServingPlan::Scenario(_))
    ));
    assert!(matches!(
        parse_serving_flags(&args(&[
            "serving",
            "--kv-page",
            "16",
            "--shared-prefix",
            "40"
        ])),
        Ok(ServingPlan::Paged(_))
    ));

    // Invalid combinations are typed, not bespoke strings.
    let invalid: Vec<(Vec<String>, FlagError)> = vec![
        (
            args(&["serving", "--shared-prefix", "40"]),
            FlagError::Scenario(ServingError::SharedPrefixRequiresPagedKv),
        ),
        (
            args(&["serving", "--kv-page", "16", "--arrival", "poisson"]),
            FlagError::PagedOpenLoop,
        ),
        (
            args(&["serving", "--kv-page", "16", "--policy", "fifo"]),
            FlagError::PagedOpenLoop,
        ),
        (
            args(&["serving", "--kv-page", "0"]),
            FlagError::Scenario(ServingError::ZeroKvPage),
        ),
        (
            args(&["serving", "--arrival", "steady"]),
            FlagError::UnknownArrival("steady".into()),
        ),
        (
            args(&["serving", "--policy", "lifo"]),
            FlagError::UnknownPolicy("lifo".into()),
        ),
    ];
    for (flags, want) in invalid {
        assert_eq!(
            parse_serving_flags(&flags),
            Err(want),
            "flags {flags:?} should be a typed rejection"
        );
    }

    assert_eq!(
        parse_fleet_flags(&args(&["fleet", "--instances", "0"])),
        Err(FlagError::Scenario(ServingError::EmptyFleet))
    );
    assert_eq!(
        parse_fleet_flags(&args(&["fleet", "--router", "random"])),
        Err(FlagError::UnknownRouter("random".into()))
    );
    assert_eq!(
        parse_fleet_flags(&args(&["fleet", "--slo", "ttft:20"])),
        Err(FlagError::UnknownSlo("ttft:20".into()))
    );
}
