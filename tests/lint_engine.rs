//! Fixture suite for the `lumen check` static-analysis engine: one
//! known-bad model per lint code, each firing its diagnostic exactly
//! once and nothing else, plus a golden-pinned JSON rendering and a
//! digest collision-freedom property over the built-in inventory.
//!
//! The fixtures dodge each other on purpose — e.g. the unpriced-boundary
//! arch gives its silent converter a nonzero area so the inert-converter
//! rule stays quiet — so a rule that starts over-firing breaks the
//! fixture of a *different* rule and the failure names both.

use lumen::arch::{ArchBuilder, ArchError, Architecture, Domain, Fanout};
use lumen::lint::rules::digest_collisions;
use lumen::lint::{
    arch_error_diagnostic, LintRegistry, LintTarget, Report, ServingSpec, Severity, StrategyFacts,
};
use lumen::mapper::search::SearchConfig;
use lumen::units::{Area, Energy, Frequency};
use lumen::workload::{
    networks, ArrivalProcess, Dim, DimSet, Layer, LayerKind, Network, RequestMix, Shape,
    TensorKind, TensorSet,
};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn run(target: &LintTarget<'_>) -> Report {
    LintRegistry::with_default_lints().run(target)
}

/// Asserts the fixture fired `code` exactly once — and nothing else, so
/// fixtures also guard against cross-rule over-firing.
fn assert_fires_only(report: &Report, code: &str, severity: Severity) {
    let hits = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == code)
        .count();
    assert_eq!(hits, 1, "{code} should fire exactly once:\n{report}");
    assert_eq!(
        report.diagnostics().len(),
        1,
        "{code} fixture tripped unrelated lints:\n{report}"
    );
    assert_eq!(report.diagnostics()[0].severity, severity);
}

/// A minimal architecture that passes every lint: priced DRAM over a
/// digital MAC, nothing optical, nothing degenerate.
fn sound_builder() -> ArchBuilder {
    ArchBuilder::new("fixture", Frequency::from_gigahertz(1.0))
}

fn priced_dram(builder: ArchBuilder) -> ArchBuilder {
    builder
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
}

fn arch_report(arch: &Architecture) -> Report {
    run(&LintTarget::new().with_arch(arch))
}

fn network_report(network: &Network) -> Report {
    run(&LintTarget::new().with_network(network))
}

fn strategy_report(facts: &StrategyFacts) -> Report {
    run(&LintTarget::new().with_strategy(facts))
}

fn search_facts(iterations: usize) -> StrategyFacts {
    StrategyFacts {
        label: "random-search".to_string(),
        address_fingerprinted: false,
        search: Some(SearchConfig {
            iterations,
            seed: 0xC0FFEE,
        }),
    }
}

#[test]
fn sound_fixture_arch_is_clean() {
    let arch = priced_dram(sound_builder())
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("sound fixture builds");
    assert!(arch_report(&arch).is_empty(), "{}", arch_report(&arch));
}

#[test]
fn l0100_build_failure_becomes_a_diagnostic() {
    let d = arch_error_diagnostic("broken", &ArchError::TooFewLevels);
    assert_eq!(d.code, "L0100");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.path, "broken");
}

#[test]
fn l0101_negative_energy() {
    let arch = sound_builder()
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(-5.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("builder accepts unphysical energies; the lint rejects them");
    assert_fires_only(&arch_report(&arch), "L0101", Severity::Error);
}

#[test]
fn l0102_zero_clock() {
    let arch = priced_dram(ArchBuilder::new("fixture", Frequency::from_hertz(0.0)))
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("builder accepts a zero clock; the lint rejects it");
    assert_fires_only(&arch_report(&arch), "L0102", Severity::Error);
}

#[test]
fn l0103_unpriced_electro_optical_boundary() {
    // Weight and Output cross through priced converters; Input crosses
    // through a zero-energy modulator that only has area (so the
    // inert-converter rule stays quiet). Exactly one unpriced crossing.
    let arch = priced_dram(sound_builder())
        .converter(
            "weight-dac",
            Domain::AnalogElectrical,
            TensorSet::from_kinds(&[TensorKind::Weight]),
        )
        .convert_energy(Energy::from_picojoules(1.0))
        .done()
        .converter(
            "output-adc",
            Domain::AnalogElectrical,
            TensorSet::from_kinds(&[TensorKind::Output]),
        )
        .convert_energy(Energy::from_picojoules(1.0))
        .done()
        .converter(
            "input-modulator",
            Domain::AnalogOptical,
            TensorSet::from_kinds(&[TensorKind::Input]),
        )
        .area(Area::from_square_millimeters(0.1))
        .done()
        .compute(
            "mrr-bank",
            Domain::AnalogOptical,
            Energy::from_picojoules(0.01),
        )
        .build()
        .expect("fixture builds");
    let report = arch_report(&arch);
    assert_fires_only(&report, "L0103", Severity::Warn);
    assert!(
        report.diagnostics()[0].message.contains("Input"),
        "{report}"
    );
}

#[test]
fn l0104_capacity_below_word_size() {
    let arch = priced_dram(sound_builder())
        .storage("tiny", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .capacity_bits(4) // word is 8 bits: not even one element fits
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("fixture builds");
    assert_fires_only(&arch_report(&arch), "L0104", Severity::Error);
}

#[test]
fn l0105_dead_fanout_restrictions() {
    let arch = priced_dram(sound_builder())
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(1).allow(DimSet::from_dims(&[Dim::M])))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("a size-1 fan-out with restrictions is structurally valid");
    assert_fires_only(&arch_report(&arch), "L0105", Severity::Warn);
}

#[test]
fn l0105_orphaned_unit_stride_dims() {
    let arch = priced_dram(sound_builder())
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(
            Fanout::new(4)
                .allow(DimSet::from_dims(&[Dim::M]))
                .require_unit_stride(DimSet::from_dims(&[Dim::Q])),
        )
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("fixture builds");
    assert_fires_only(&arch_report(&arch), "L0105", Severity::Warn);
}

#[test]
fn l0106_inert_converter() {
    let arch = priced_dram(sound_builder())
        .converter(
            "mystery",
            Domain::DigitalElectrical,
            TensorSet::from_kinds(&[TensorKind::Input]),
        )
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("fixture builds");
    assert_fires_only(&arch_report(&arch), "L0106", Severity::Warn);
}

#[test]
fn l0107_free_storage() {
    let arch = priced_dram(sound_builder())
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("fixture builds");
    let report = arch_report(&arch);
    assert_fires_only(&report, "L0107", Severity::Warn);
    assert!(report.diagnostics()[0].path.ends_with("/glb"), "{report}");
}

#[test]
fn l0201_matmul_with_convolutional_structure() {
    let layer = Layer::try_new(
        "transplanted",
        LayerKind::Matmul,
        Shape::new(1, 8, 8, 1, 4, 1, 1),
        (1, 1),
        (1, 1),
        1,
    )
    .expect("constructor does not police GEMM windows; the lint does");
    let net = Network::new("fixture").push(layer);
    assert_fires_only(&network_report(&net), "L0201", Severity::Error);
}

#[test]
fn l0202_kv_append_exceeds_resident_tensor() {
    // 4x4 stationary tensor, 100 appended elements per step.
    let net =
        Network::new("fixture").push(Layer::matmul("kv", 1, 4, 4, 1).with_kv_cache_residency(100));
    assert_fires_only(&network_report(&net), "L0202", Severity::Warn);
}

#[test]
fn l0203_kv_residency_on_a_convolution() {
    let net = Network::new("fixture")
        .push(Layer::conv2d("conv", 1, 8, 8, 4, 4, 3, 3).with_kv_cache_residency(5));
    assert_fires_only(&network_report(&net), "L0203", Severity::Error);
}

#[test]
fn l0204_oversized_tensor() {
    // 2^26 x 2^26 weights = 2^52 elements, past the 2^50 plausibility bar.
    let net = Network::new("fixture").push(Layer::matmul("huge", 1, 1 << 26, 1 << 26, 1));
    let report = network_report(&net);
    assert_fires_only(&report, "L0204", Severity::Warn);
    assert!(
        report.diagnostics()[0].message.contains("Weight"),
        "{report}"
    );
}

#[test]
fn l0205_empty_network() {
    let net = Network::new("empty");
    assert_fires_only(&network_report(&net), "L0205", Severity::Warn);
}

#[test]
fn l0206_forged_digest_collision() {
    // A genuine 64-bit FNV-1a collision cannot be constructed here, so
    // the fixture forges equal digests for distinct signatures.
    let a = Layer::matmul("a", 1, 4, 4, 1).signature();
    let b = Layer::matmul("b", 1, 8, 8, 1).signature();
    assert_ne!(a, b);
    let diags = digest_collisions(&[("a", a, 42), ("b", b, 42)]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "L0206");
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(diags[0].path, "a <-> b");
    // Equal digests from *equal* signatures are not collisions.
    assert!(digest_collisions(&[("a", a, 42), ("a2", a, 42)]).is_empty());
}

#[test]
fn l0301_address_fingerprinted_strategy() {
    let facts = StrategyFacts {
        label: "custom".to_string(),
        address_fingerprinted: true,
        search: None,
    };
    assert_fires_only(&strategy_report(&facts), "L0301", Severity::Warn);
}

#[test]
fn l0302_zero_iteration_search() {
    // The only fixture that legitimately fires two codes: the L0302
    // error on the cause plus the L0405 warning on the symptom.
    let report = strategy_report(&search_facts(0));
    assert_eq!(report.diagnostics().len(), 2, "{report}");
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == "L0302" && d.severity == Severity::Error),
        "{report}"
    );
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == "L0405" && d.severity == Severity::Warn),
        "{report}"
    );
}

#[test]
fn l0405_stays_quiet_for_positive_iterations() {
    assert!(strategy_report(&search_facts(1)).is_empty());
}

#[test]
fn l0303_excessive_search_budget() {
    assert_fires_only(
        &strategy_report(&search_facts(200_000)),
        "L0303",
        Severity::Warn,
    );
}

#[test]
fn l0401_zero_capacity_schedule() {
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 0,
        kv_bucket: 64,
        kv_page: None,
        arrival: None,
        max_context: None,
    };
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0401", Severity::Error);
}

#[test]
fn l0402_zero_kv_bucket() {
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 8,
        kv_bucket: 0,
        kv_page: None,
        arrival: None,
        max_context: None,
    };
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0402", Severity::Warn);
}

#[test]
fn l0402_kv_bucket_larger_than_any_sequence() {
    // Longest sequence is 128 + 32 = 160 tokens; a 1024 bucket pads
    // every step past it.
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 8,
        kv_bucket: 1024,
        kv_page: None,
        arrival: None,
        max_context: None,
    };
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0402", Severity::Warn);
}

#[test]
fn l0403_offered_load_exceeds_capacity() {
    // Mean output is 32 decode steps per request; at one arrival per
    // step the offered load is 32 slot-steps/step against 8 slots.
    let mix = RequestMix::uniform(4, 128, 32);
    let arrival = ArrivalProcess::poisson(1.0, 7);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 8,
        kv_bucket: 64,
        kv_page: None,
        arrival: Some(&arrival),
        max_context: None,
    };
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0403", Severity::Warn);
}

#[test]
fn l0403_stays_quiet_under_capacity_and_closed_loop() {
    let mix = RequestMix::uniform(4, 128, 32);
    // 0.1 arrivals/step × 32 steps/request = 3.2 < 8 slots.
    let underload = ArrivalProcess::poisson(0.1, 7);
    let closed = ArrivalProcess::ClosedLoop;
    for arrival in [&underload, &closed] {
        let serving = ServingSpec {
            mix: &mix,
            capacity: 8,
            kv_bucket: 64,
            kv_page: None,
            arrival: Some(arrival),
            max_context: None,
        };
        let report = run(&LintTarget::new().with_serving(&serving));
        assert!(report.is_empty(), "{report}");
    }
}

#[test]
fn l0404_prompt_exceeds_model_context() {
    // Longest request reaches 128 + 32 = 160 tokens against a
    // 128-token window.
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 8,
        kv_bucket: 64,
        kv_page: None,
        arrival: None,
        max_context: Some(128),
    };
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0404", Severity::Error);
}

#[test]
fn l0404_stays_quiet_when_requests_fit() {
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 8,
        kv_bucket: 64,
        kv_page: None,
        arrival: None,
        max_context: Some(1024),
    };
    let report = run(&LintTarget::new().with_serving(&serving));
    assert!(report.is_empty(), "{report}");
}

/// A well-formed paged serving spec the `L0406`/`L0407` tests perturb.
fn paged_spec(mix: &RequestMix, page: usize) -> ServingSpec<'_> {
    ServingSpec {
        mix,
        capacity: 8,
        kv_bucket: 64,
        kv_page: Some(page),
        arrival: None,
        max_context: None,
    }
}

#[test]
fn l0406_zero_page_is_an_error() {
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = paged_spec(&mix, 0);
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0406", Severity::Error);
}

#[test]
fn l0406_page_must_tile_the_bucket() {
    // 24 does not divide the 64-token bucket, so bucketed accounting
    // stops being an upper bound on paged residency.
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = paged_spec(&mix, 24);
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0406", Severity::Warn);
}

#[test]
fn l0407_fragmentation_heavy_page() {
    // Mean sequence is 160 tokens; a 64-token page is over a quarter
    // of it, so per-request tail pages dominate the residency. 64
    // tiles the bucket, so L0406 stays quiet.
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = paged_spec(&mix, 64);
    let report = run(&LintTarget::new().with_serving(&serving));
    assert_fires_only(&report, "L0407", Severity::Warn);
}

#[test]
fn paged_spec_with_a_fine_page_stays_quiet() {
    let mix = RequestMix::uniform(4, 128, 32);
    let serving = paged_spec(&mix, 16);
    let report = run(&LintTarget::new().with_serving(&serving));
    assert!(report.is_empty(), "{report}");
}

// --- golden-pinned JSON rendering -----------------------------------

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Same bless/compare protocol as `tests/golden.rs`, for the JSON
/// snapshot this suite owns.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("LUMEN_BLESS").as_deref() == Ok("1") {
        fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {path:?} ({e}); generate it with \
             `LUMEN_BLESS=1 cargo test --test lint_engine`"
        )
    });
    assert_eq!(
        actual, expected,
        "rendered `{name}` drifted from its snapshot; if the change is \
         intentional, regenerate with `LUMEN_BLESS=1 cargo test --test \
         lint_engine` and review the diff"
    );
}

/// A deterministic multi-finding run — empty network, degenerate
/// search, zero-capacity schedule with a zero bucket — rendered as
/// JSON. Pins the machine-readable format consumed by CI and tooling.
#[test]
fn json_rendering_matches_golden() {
    let net = Network::new("empty");
    let facts = search_facts(0);
    let mix = RequestMix::uniform(2, 64, 16);
    let serving = ServingSpec {
        mix: &mix,
        capacity: 0,
        kv_bucket: 0,
        kv_page: None,
        arrival: None,
        max_context: None,
    };
    let target = LintTarget::new()
        .with_network(&net)
        .with_strategy(&facts)
        .with_serving(&serving);
    let report = run(&target);
    assert_eq!(report.errors(), 2, "{report}");
    assert_eq!(report.warnings(), 3, "{report}");
    assert_golden("lint_check.json", &report.render_json());
}

// --- digest collision-freedom over the real inventory ---------------

fn inventory() -> Vec<Network> {
    let mut nets: Vec<Network> = networks::NAMES
        .iter()
        .map(|n| networks::by_name(n).expect("inventory resolves"))
        .collect();
    nets.push(networks::by_name("gpt2-small-decode").expect("decode alias resolves"));
    nets
}

#[test]
fn built_in_inventory_digests_are_collision_free() {
    let nets = inventory();
    let mut entries = Vec::new();
    for net in &nets {
        for layer in net.layers() {
            let sig = layer.signature();
            let digest = sig.digest();
            entries.push((layer.name(), sig, digest));
        }
    }
    assert!(entries.len() > 300, "inventory unexpectedly small");
    let collisions = digest_collisions(&entries);
    assert!(collisions.is_empty(), "{collisions:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch replication rewrites every layer's N bound; digests must
    /// stay collision-free across the whole inventory for any batch, not
    /// just the shipped defaults.
    #[test]
    fn digests_stay_collision_free_under_batching(batch in 1usize..=4) {
        let mut entries = Vec::new();
        let batched: Vec<Network> = inventory().iter().map(|n| n.with_batch(batch)).collect();
        for net in &batched {
            for layer in net.layers() {
                let sig = layer.signature();
                let digest = sig.digest();
                entries.push((layer.name(), sig, digest));
            }
        }
        prop_assert!(digest_collisions(&entries).is_empty());
    }
}
