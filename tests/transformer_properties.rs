//! Property and invariant tests for the matmul / transformer path.
//!
//! Random matmul shapes drive the mapper + evaluator on toy hardware;
//! the built-in transformer networks drive the full Albireo and digital
//! baseline systems. The properties: mapped spatial factors never exceed
//! hardware instance counts, energy is finite and non-negative, and the
//! deterministic mapping strategies are reproducible run to run.

use lumen::albireo::{AlbireoConfig, DigitalBaseline, ScalingProfile};
use lumen::arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen::core::{MappingStrategy, NetworkOptions, System};
use lumen::mapper::analyze;
use lumen::mapper::search::{greedy_mapping, spatial_priority_for, TemporalPlan};
use lumen::units::{Energy, Frequency};
use lumen::workload::{networks, Dim, DimSet, Layer, Network, TensorSet};
use proptest::prelude::*;

fn toy_arch(fanout: usize, dims: &[Dim]) -> Architecture {
    ArchBuilder::new("prop", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("buf", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(fanout).allow(DimSet::from_dims(dims)))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.1),
        )
        .build()
        .expect("toy architecture is valid")
}

/// Strategy: a small random (possibly grouped / batched) matmul.
fn matmul_strategy() -> impl Strategy<Value = Layer> {
    (
        1usize..=2,  // batch
        1usize..=4,  // heads (groups)
        1usize..=24, // per-head m
        1usize..=24, // per-head k
        1usize..=48, // rows (sequence)
    )
        .prop_map(|(n, h, m, k, rows)| {
            Layer::matmul("prop-mm", n, h * m, h * k, rows).with_groups(h)
        })
}

/// Asserts the per-level invariant behind "spatial factors never exceed
/// hardware instance counts" for one mapped evaluation.
fn assert_spatial_within_fanouts(arch: &Architecture, mapping: &lumen::mapper::Mapping) {
    for (x, level) in arch.levels().iter().enumerate() {
        let used = mapping.level(x).spatial_product();
        let available = level.fanout().size() as u64;
        assert!(
            used <= available,
            "level `{}` uses {used} of {available} instances",
            level.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_matmul_mapping_is_legal(layer in matmul_strategy(), fanout in 1usize..=16) {
        let arch = toy_arch(fanout, &[Dim::M, Dim::C, Dim::P]);
        let mapping = greedy_mapping(&arch, &layer, spatial_priority_for(&layer), &TemporalPlan::all_at(1));
        prop_assert!(mapping.validate(&arch, &layer).is_ok());
        let analysis = analyze(&arch, &layer, &mapping).unwrap();
        prop_assert_eq!(analysis.macs, layer.macs());
        prop_assert!(analysis.padded_macs >= analysis.macs);
        prop_assert!(analysis.utilization > 0.0 && analysis.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn matmul_spatial_factors_bounded_by_fanout(layer in matmul_strategy(), fanout in 1usize..=16) {
        let arch = toy_arch(fanout, &[Dim::M, Dim::C, Dim::P]);
        let mapping = greedy_mapping(&arch, &layer, spatial_priority_for(&layer), &TemporalPlan::all_at(1));
        for (x, level) in arch.levels().iter().enumerate() {
            prop_assert!(mapping.level(x).spatial_product() <= level.fanout().size() as u64);
        }
    }

    #[test]
    fn matmul_energy_finite_and_nonnegative(layer in matmul_strategy()) {
        let arch = toy_arch(8, &[Dim::M, Dim::C, Dim::P]);
        let system = System::new(arch, MappingStrategy::default());
        let eval = system.evaluate_layer(&layer).unwrap();
        prop_assert!(eval.energy.total().is_finite());
        prop_assert!(eval.energy.total() > Energy::ZERO);
        for item in eval.energy.items() {
            prop_assert!(item.energy.raw() >= 0.0, "no negative energy items");
        }
    }
}

fn transformer_networks() -> Vec<Network> {
    networks::TRANSFORMER_NAMES
        .iter()
        .map(|name| networks::by_name(name).expect("built-in transformer"))
        .collect()
}

#[test]
fn transformer_spatial_factors_within_albireo_fanouts() {
    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    for net in transformer_networks() {
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        for layer_eval in &eval.per_layer {
            assert_spatial_within_fanouts(system.arch(), &layer_eval.mapping);
        }
    }
}

#[test]
fn transformer_spatial_factors_within_digital_fanouts() {
    let system = DigitalBaseline::new().build_system();
    for net in transformer_networks() {
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        for layer_eval in &eval.per_layer {
            assert_spatial_within_fanouts(system.arch(), &layer_eval.mapping);
        }
    }
}

#[test]
fn transformer_energy_finite_on_every_corner() {
    for scaling in ScalingProfile::ALL {
        let system = AlbireoConfig::new(scaling).build_system();
        for net in transformer_networks() {
            let eval = system
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap_or_else(|e| panic!("{} on {scaling}: {e}", net.name()));
            assert!(eval.energy.total().is_finite());
            assert!(eval.energy.total() > Energy::ZERO);
            for layer_eval in &eval.per_layer {
                assert!(layer_eval.energy.total().is_finite());
                for item in layer_eval.energy.items() {
                    assert!(item.energy.raw() >= 0.0, "negative item in {}", net.name());
                }
            }
        }
    }
}

#[test]
fn transformer_greedy_energy_reproducible_run_to_run() {
    // Two independently constructed systems must produce bit-identical
    // per-layer energies for every transformer network: the mapping
    // cascade is deterministic and the nest analysis is pure arithmetic.
    for net in transformer_networks() {
        let first = AlbireoConfig::new(ScalingProfile::Moderate)
            .build_system()
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap();
        let second = AlbireoConfig::new(ScalingProfile::Moderate)
            .build_system()
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap();
        assert_eq!(
            first.energy.total().raw(),
            second.energy.total().raw(),
            "{}: total energy must be bit-identical",
            net.name()
        );
        for (a, b) in first.per_layer.iter().zip(second.per_layer.iter()) {
            assert_eq!(a.layer_name, b.layer_name);
            assert_eq!(a.mapping, b.mapping, "{}: mapping drifted", a.layer_name);
            assert_eq!(
                a.energy.total().raw(),
                b.energy.total().raw(),
                "{}: layer energy drifted",
                a.layer_name
            );
        }
    }
}
