//! Cross-crate guarantees of the content-addressed evaluation pipeline:
//! cached and uncached evaluation are **bit-identical** across every
//! bundled network and both deterministic mapping-strategy families, and
//! mapping search runs exactly once per unique layer signature.

use lumen::arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen::core::{EvalCache, EvalSession, MappingStrategy, NetworkOptions, SweepRunner, System};
use lumen::mapper::search::{greedy_mapping, spatial_priority_for, SearchConfig, TemporalPlan};
use lumen::units::{Energy, Frequency};
use lumen::workload::{networks, Dim, DimSet, Layer, LayerSignature, TensorSet};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A small generic hierarchy that maps every bundled network: DRAM, a
/// generously sized global buffer with a wide fanout, digital MACs.
fn generic_arch() -> Architecture {
    ArchBuilder::new("generic", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(256).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P, Dim::Q])))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("generic arch is valid")
}

fn strategies() -> Vec<(&'static str, MappingStrategy)> {
    vec![
        ("greedy", MappingStrategy::default()),
        (
            "random-search",
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 25,
                seed: 0xC0FFEE,
            }),
        ),
    ]
}

/// The property at the heart of the refactor: for every bundled network
/// and both mapping-strategy families, the content-addressed pipeline
/// reproduces the sequential path bit for bit — totals, cycles, and every
/// per-layer mapping, analysis and energy item.
#[test]
fn cached_evaluation_is_bit_identical_for_all_networks_and_strategies() {
    for (strategy_name, strategy) in strategies() {
        for name in networks::NAMES {
            let net = networks::by_name(name).expect("bundled network");
            let system = System::new(generic_arch(), strategy.clone());
            let sequential = system
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap_or_else(|e| panic!("{name}/{strategy_name}: sequential fails: {e}"));
            let session = EvalSession::new(system);
            let cached = session
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap_or_else(|e| panic!("{name}/{strategy_name}: cached fails: {e}"));

            let ctx = format!("{name}/{strategy_name}");
            assert_eq!(
                sequential.energy.total().picojoules().to_bits(),
                cached.energy.total().picojoules().to_bits(),
                "{ctx}: total energy drifted"
            );
            assert_eq!(
                sequential.cycles.to_bits(),
                cached.cycles.to_bits(),
                "{ctx}: cycles drifted"
            );
            assert_eq!(sequential.macs, cached.macs, "{ctx}: macs drifted");
            assert_eq!(sequential.per_layer.len(), cached.per_layer.len());
            for (s, c) in sequential.per_layer.iter().zip(&cached.per_layer) {
                assert_eq!(s.layer_name, c.layer_name, "{ctx}: layer order");
                assert_eq!(
                    s.signature, c.signature,
                    "{ctx}: {0} signature",
                    s.layer_name
                );
                assert_eq!(s.mapping, c.mapping, "{ctx}: {0} mapping", s.layer_name);
                assert_eq!(
                    s.analysis.cycles, c.analysis.cycles,
                    "{ctx}: {0} cycles",
                    s.layer_name
                );
                assert_eq!(
                    s.energy.total().picojoules().to_bits(),
                    c.energy.total().picojoules().to_bits(),
                    "{ctx}: {0} energy",
                    s.layer_name
                );
            }

            // The session searched only the unique signatures.
            let unique: HashSet<LayerSignature> =
                net.layers().iter().map(Layer::signature).collect();
            assert_eq!(
                session.cache_stats().misses,
                unique.len() as u64,
                "{ctx}: one mapping search per unique signature"
            );
        }
    }
}

/// Batching and fusion go through the same dedup path; check one
/// representative workload under every option combination.
#[test]
fn cached_evaluation_is_bit_identical_under_batching_and_fusion() {
    let options = [
        NetworkOptions::baseline(),
        NetworkOptions::baseline().with_batch(8),
        NetworkOptions::baseline().with_fusion("dram", "glb"),
        NetworkOptions::baseline()
            .with_batch(8)
            .with_fusion("dram", "glb"),
    ];
    let net = networks::resnet18();
    for options in &options {
        let system = System::new(generic_arch(), MappingStrategy::default());
        let sequential = system.evaluate_network(&net, options).unwrap();
        let cached = EvalSession::new(system)
            .evaluate_network(&net, options)
            .unwrap();
        assert_eq!(
            sequential.energy.total().picojoules().to_bits(),
            cached.energy.total().picojoules().to_bits(),
            "batch={} fusion={}",
            options.batch,
            options.fusion.is_some()
        );
        assert_eq!(sequential.cycles.to_bits(), cached.cycles.to_bits());
    }
}

/// The acceptance criterion made literal: a counting `Custom` strategy
/// proves that evaluating bert-base through an [`EvalSession`] invokes
/// mapping construction exactly once per *unique* signature — 5 times
/// for the 96-layer network — and that the result still matches the
/// uncached path bit for bit.
#[test]
fn bert_base_maps_once_per_unique_signature() {
    let net = networks::bert_base();
    let unique: HashSet<LayerSignature> = net.layers().iter().map(Layer::signature).collect();
    assert_eq!(
        unique.len(),
        5,
        "bert-base: 4x proj, logits, attend, fc1, fc2"
    );

    let searches = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&searches);
    let counting = MappingStrategy::Custom(Arc::new(move |arch, layer| {
        counter.fetch_add(1, Ordering::Relaxed);
        greedy_mapping(
            arch,
            layer,
            spatial_priority_for(layer),
            &TemporalPlan::all_at(1),
        )
    }));

    let session = EvalSession::new(System::new(generic_arch(), counting.clone()));
    let cached = session
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("bert-base maps");
    assert_eq!(
        searches.load(Ordering::Relaxed),
        unique.len(),
        "mapping construction ran once per unique signature"
    );
    assert_eq!(session.cache_stats().misses, unique.len() as u64);
    assert_eq!(
        session.cache_stats().hits,
        (net.layers().len() - unique.len()) as u64
    );

    let uncached = System::new(generic_arch(), counting)
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("bert-base maps");
    assert_eq!(
        searches.load(Ordering::Relaxed),
        unique.len() + net.layers().len(),
        "uncached path maps every layer"
    );
    assert_eq!(
        uncached.energy.total().picojoules().to_bits(),
        cached.energy.total().picojoules().to_bits()
    );
}

/// A cache shared across sweep-style sessions answers repeated
/// (architecture, layer) pairs without re-evaluating, and a
/// single-threaded runner changes nothing about the results.
#[test]
fn shared_cache_reuses_across_sessions_and_thread_counts() {
    let cache = EvalCache::shared();
    let net = networks::bert_base();
    let first = EvalSession::new(System::new(generic_arch(), MappingStrategy::default()))
        .with_cache(Arc::clone(&cache));
    let a = first
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    assert_eq!(cache.stats().misses, 5);

    let second = EvalSession::new(System::new(generic_arch(), MappingStrategy::default()))
        .with_cache(Arc::clone(&cache))
        .with_runner(SweepRunner::with_threads(1));
    let b = second
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    assert_eq!(
        cache.stats().misses,
        5,
        "second session re-evaluated nothing"
    );
    assert_eq!(
        a.energy.total().picojoules().to_bits(),
        b.energy.total().picojoules().to_bits(),
        "thread count and cache state do not affect results"
    );
}

/// `without_cache` is the A/B escape hatch: same results, no memoization.
#[test]
fn uncached_session_matches_cached_session() {
    let net = networks::gpt2_small();
    let cached = EvalSession::new(System::new(generic_arch(), MappingStrategy::default()));
    let uncached =
        EvalSession::new(System::new(generic_arch(), MappingStrategy::default())).without_cache();
    let a = cached
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    let b = uncached
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    assert_eq!(
        a.energy.total().picojoules().to_bits(),
        b.energy.total().picojoules().to_bits()
    );
    assert_eq!(uncached.cache_stats().hits, 0);
    assert_eq!(uncached.cache_stats().misses, 0);
}

/// The decode acceptance criterion made literal: a 512-step GPT-2 small
/// decode trace (one token per step, KV lengths 0..512, attend lengths
/// padded to 64-token buckets) evaluated through one [`EvalSession`]
/// performs at most *(unique KV-length buckets × unique signatures per
/// step)* mapping searches — the counting `Custom` strategy proves it —
/// and costs ≤ 10% of the naive one-search-per-layer-per-step bill, with
/// a cache hit rate well above 90%.
#[test]
fn decode_trace_512_steps_costs_a_handful_of_searches() {
    use lumen::mapper::search::{greedy_mapping, spatial_priority_for, TemporalPlan};

    let searches = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&searches);
    let counting = MappingStrategy::Custom(Arc::new(move |arch, layer| {
        counter.fetch_add(1, Ordering::Relaxed);
        greedy_mapping(
            arch,
            layer,
            spatial_priority_for(layer),
            &TemporalPlan::all_at(1),
        )
    }));

    let session = EvalSession::new(System::new(generic_arch(), counting));
    let mut layer_evals = 0usize;
    let mut buckets = HashSet::new();
    let mut unique_per_step = 0usize;
    for (kv_len, net) in networks::gpt2_small_decode_trace(0, 512, 64) {
        buckets.insert((kv_len + 1).div_ceil(64));
        let unique: HashSet<LayerSignature> = net.layers().iter().map(Layer::signature).collect();
        unique_per_step = unique_per_step.max(unique.len());
        let eval = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_or_else(|e| panic!("kv={kv_len}: {e}"));
        layer_evals += eval.per_layer.len();
    }
    assert_eq!(layer_evals, 512 * 97);
    assert_eq!(buckets.len(), 8, "attend lengths 64, 128, .., 512");
    assert_eq!(
        unique_per_step, 6,
        "proj, logits, attend, fc1, fc2, lm-head"
    );

    let searched = searches.load(Ordering::Relaxed);
    assert!(
        searched <= buckets.len() * unique_per_step,
        "{searched} searches exceed buckets x unique-per-step = {}",
        buckets.len() * unique_per_step
    );
    assert!(
        searched * 10 <= layer_evals,
        "{searched} searches exceed 10% of the naive {layer_evals}"
    );

    let stats = session.cache_stats();
    assert_eq!(stats.misses as usize, searched, "every miss is one search");
    assert_eq!(
        stats.hits + stats.misses,
        layer_evals as u64,
        "every layer evaluation is accounted for"
    );
    assert!(stats.hit_rate() >= 0.9, "hit rate {:.3}", stats.hit_rate());
}

/// The serving acceptance criterion made literal: an 800-step
/// continuous-batching schedule of a mixed-length long-tail request
/// population (28 requests over 8 slots, KV lengths padded to 128-token
/// buckets) evaluated through one [`EvalSession`] performs at most
/// *(distinct (padded attend length, group size) pairs × unique
/// signatures per group)* mapping searches — the counting `Custom`
/// strategy proves it — at a ≥ 99% hit rate over tens of thousands of
/// layer evaluations.
#[test]
fn serving_trace_800_steps_costs_a_handful_of_searches() {
    use lumen::mapper::search::{greedy_mapping, spatial_priority_for, TemporalPlan};
    use lumen::workload::serving::{BatchSchedule, RequestMix, ServingModel};

    let searches = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&searches);
    let counting = MappingStrategy::Custom(Arc::new(move |arch, layer| {
        counter.fetch_add(1, Ordering::Relaxed);
        greedy_mapping(
            arch,
            layer,
            spatial_priority_for(layer),
            &TemporalPlan::all_at(1),
        )
    }));

    // A small decoder shape keeps the per-step layer count (and so the
    // debug-mode wall time) modest; the scheduler and cache economics
    // are shape-independent.
    let model = ServingModel::new("toy-lm", 256, 4, 512, 2, 4096);
    let mix = RequestMix::long_tail(0x51EED, 28, (0, 480), 80, 2);
    let schedule = BatchSchedule::build(&mix, 8);
    assert!(
        schedule.total_steps() >= 512,
        "the trace is long enough to prove scaling: {} steps",
        schedule.total_steps()
    );

    let bucket = 128usize;
    let session = EvalSession::new(System::new(generic_arch(), counting));
    let mut layer_evals = 0usize;
    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    let mut unique: HashSet<LayerSignature> = HashSet::new();
    for step in schedule.steps() {
        let kv = step.kv_lens();
        pairs.extend(ServingModel::bucketed_composition(&kv, bucket));
        let net = model.lower_step(&kv, bucket);
        unique.extend(net.layers().iter().map(Layer::signature));
        let eval = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_or_else(|e| panic!("step occupancy {}: {e}", step.occupancy()));
        layer_evals += eval.per_layer.len();
    }

    let searched = searches.load(Ordering::Relaxed);
    // Every search is a distinct signature, and each (padded length,
    // group size) pair lowers at most 6 unique signatures (shared
    // projections, logits, attend, fc1, fc2, LM head) — the serving
    // analogue of decode's buckets x unique-per-step bound.
    assert_eq!(searched, unique.len(), "one search per unique signature");
    assert!(
        searched <= pairs.len() * 6,
        "{searched} searches exceed (bucket, group) pairs x 6 = {}",
        pairs.len() * 6
    );
    assert!(
        searched * 100 <= layer_evals,
        "{searched} searches exceed 1% of the naive {layer_evals}"
    );

    let stats = session.cache_stats();
    assert_eq!(stats.misses as usize, searched, "every miss is one search");
    assert_eq!(
        stats.hits + stats.misses,
        layer_evals as u64,
        "every layer evaluation is accounted for"
    );
    assert!(stats.hit_rate() >= 0.99, "hit rate {:.4}", stats.hit_rate());
}

/// The paged analogue of the 800-step scaling test: the same kind of
/// mixed-length population, event-scheduled with chunked prefill and
/// lowered at exact page residency (page 32) instead of bucket
/// padding. Finer pages visit many more distinct attend lengths than
/// a coarse bucket, yet the search count stays pinned to the unique
/// layer signatures — the page-residency variants dedupe through the
/// same content-addressed path.
#[test]
fn paged_serving_trace_dedups_by_unique_signature() {
    use lumen::workload::serving::{
        KvLayout, PageTable, PrefillMode, RequestMix, ServingConfig, ServingModel, ServingSchedule,
    };

    let searches = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&searches);
    let counting = MappingStrategy::Custom(Arc::new(move |arch, layer| {
        counter.fetch_add(1, Ordering::Relaxed);
        greedy_mapping(
            arch,
            layer,
            spatial_priority_for(layer),
            &TemporalPlan::all_at(1),
        )
    }));

    let model = ServingModel::new("toy-lm", 256, 4, 512, 2, 4096);
    let mix = RequestMix::long_tail(0x51EED, 28, (64, 320), 80, 2);
    let config = ServingConfig::new(8).with_prefill(PrefillMode::OnAdmission { chunk: Some(96) });
    let schedule = ServingSchedule::build(&mix, &config);
    assert!(
        schedule.total_steps() >= 400,
        "the trace is long enough to prove scaling: {} steps",
        schedule.total_steps()
    );

    let layout = KvLayout::Paged(PageTable::new(32));
    let session = EvalSession::new(System::new(generic_arch(), counting));
    let mut layer_evals = 0usize;
    let mut unique: HashSet<LayerSignature> = HashSet::new();
    for step in schedule.steps() {
        let net = model.lower_serving_step_with(step, &layout);
        unique.extend(net.layers().iter().map(Layer::signature));
        let eval = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_or_else(|e| panic!("step occupancy {}: {e}", step.occupancy()));
        layer_evals += eval.per_layer.len();
    }

    let searched = searches.load(Ordering::Relaxed);
    assert_eq!(searched, unique.len(), "one search per unique signature");
    assert!(
        searched * 20 <= layer_evals,
        "{searched} searches exceed 5% of the naive {layer_evals}"
    );
    let stats = session.cache_stats();
    assert_eq!(stats.misses as usize, searched, "every miss is one search");
    assert_eq!(stats.hits + stats.misses, layer_evals as u64);
    assert!(stats.hit_rate() >= 0.95, "hit rate {:.4}", stats.hit_rate());
}

/// Albireo's bespoke dataflow (a `Custom` strategy) rides the same
/// pipeline: the figure drivers moved onto sessions, so the golden suite
/// already pins their exact output; here we pin the per-layer identity.
#[test]
fn albireo_transformer_evaluation_is_bit_identical() {
    use lumen::albireo::{AlbireoConfig, ScalingProfile};
    let net = networks::vit_b16();
    let system = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
    let sequential = system
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    let cached = EvalSession::new(system)
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    for (s, c) in sequential.per_layer.iter().zip(&cached.per_layer) {
        assert_eq!(
            s.energy.total().picojoules().to_bits(),
            c.energy.total().picojoules().to_bits(),
            "{}",
            s.layer_name
        );
    }
}
