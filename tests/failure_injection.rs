//! Failure-injection tests: every user-facing error path produces a
//! descriptive error instead of a panic or a silent wrong answer.

use lumen::arch::{ArchBuilder, ArchError, Domain, Fanout};
use lumen::core::{MappingStrategy, System, SystemError};
use lumen::mapper::{analyze, Mapping, MappingError};
use lumen::units::{Energy, Frequency};
use lumen::workload::{
    networks, Dim, DimSet, Layer, LayerError, LayerKind, Shape, TensorKind, TensorSet,
};

#[test]
fn zero_dimension_layer_is_rejected() {
    let err = Layer::try_new(
        "bad",
        LayerKind::Conv2d,
        Shape::new(1, 0, 3, 8, 8, 3, 3),
        (1, 1),
        (1, 1),
        1,
    )
    .unwrap_err();
    assert_eq!(err, LayerError::ZeroParameter("shape bound"));
    assert!(!err.to_string().is_empty());
}

#[test]
fn indivisible_groups_are_rejected() {
    let err = Layer::try_new(
        "bad",
        LayerKind::Conv2d,
        Shape::new(1, 10, 9, 8, 8, 3, 3),
        (1, 1),
        (1, 1),
        4,
    )
    .unwrap_err();
    assert!(matches!(err, LayerError::BadGrouping { groups: 4, .. }));
}

#[test]
fn architecture_without_compute_is_rejected() {
    // A single storage level cannot form a hierarchy.
    let err = ArchBuilder::new("bad", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .done()
        .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
        .build();
    assert!(err.is_ok(), "two levels are the minimum");
    // But a converter on the outside is not.
    let err = ArchBuilder::new("bad", Frequency::from_gigahertz(1.0))
        .converter("dac", Domain::AnalogElectrical, TensorSet::all())
        .done()
        .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
        .build()
        .unwrap_err();
    assert_eq!(err, ArchError::BadOutermost);
}

#[test]
fn empty_keep_set_is_rejected() {
    let err = ArchBuilder::new("bad", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .done()
        .storage("buf", Domain::DigitalElectrical, TensorSet::EMPTY)
        .done()
        .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
        .build()
        .unwrap_err();
    assert_eq!(err, ArchError::NothingKept("buf".into()));
}

fn two_level_arch(capacity_bits: Option<u64>) -> lumen::arch::Architecture {
    let mut builder = ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(50.0))
        .write_energy(Energy::from_picojoules(50.0))
        .done()
        .storage("buf", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0));
    if let Some(bits) = capacity_bits {
        builder = builder.capacity_bits(bits);
    }
    builder
        .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::M])))
        .done()
        .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
        .build()
        .unwrap()
}

#[test]
fn wrong_level_count_is_reported() {
    let arch = two_level_arch(None);
    let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
    let mapping = Mapping::new(2); // arch has 3 levels
    let err = analyze(&arch, &layer, &mapping).unwrap_err();
    assert!(matches!(
        err,
        MappingError::LevelCountMismatch {
            mapping: 2,
            arch: 3
        }
    ));
}

#[test]
fn uncovered_dimension_is_reported_with_numbers() {
    let arch = two_level_arch(None);
    let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
    let mut mapping = Mapping::new(3);
    mapping.push_temporal(1, Dim::C, 2); // C needs 4
    mapping.push_spatial(1, Dim::M, 4);
    mapping.push_temporal(1, Dim::P, 4);
    mapping.push_temporal(1, Dim::Q, 4);
    let err = analyze(&arch, &layer, &mapping).unwrap_err();
    match err {
        MappingError::Uncovered {
            dim,
            mapped,
            needed,
        } => {
            assert_eq!(dim, Dim::C);
            assert_eq!((mapped, needed), (2, 4));
        }
        other => panic!("expected Uncovered, got {other:?}"),
    }
}

#[test]
fn capacity_error_names_the_level_and_sizes() {
    let arch = two_level_arch(Some(16)); // 2 elements at 8 bits
    let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
    let system = System::new(arch, MappingStrategy::Greedy { temporal_level: 0 });
    let err = system.evaluate_layer(&layer).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("buf"), "level named: {message}");
    assert!(message.contains("bits"), "sizes included: {message}");
    assert!(matches!(
        err,
        SystemError::NoMapping {
            cause: Some(MappingError::CapacityExceeded { .. }),
            ..
        }
    ));
}

#[test]
fn unknown_network_lookup_returns_none() {
    assert!(networks::by_name("resnet-9000").is_none());
    assert!(networks::by_name("").is_none());
}

#[test]
fn degenerate_one_by_one_layer_still_evaluates() {
    // Smallest possible layer: one MAC.
    let arch = two_level_arch(None);
    let system = System::new(arch, MappingStrategy::default());
    let layer = Layer::conv2d("tiny", 1, 1, 1, 1, 1, 1, 1);
    let eval = system.evaluate_layer(&layer).unwrap();
    assert_eq!(eval.analysis.macs, 1);
    assert_eq!(eval.analysis.cycles, 1);
    // One weight, one input, one output reach the backing store.
    assert_eq!(eval.analysis.level(0).reads[TensorKind::Weight], 1.0);
    assert_eq!(eval.analysis.level(0).reads[TensorKind::Input], 1.0);
    assert_eq!(eval.analysis.level(0).writes[TensorKind::Output], 1.0);
}

#[test]
fn stride_larger_than_kernel_is_legal() {
    // Non-overlapping windows (stride > kernel) must not break footprint
    // math or produce negative reuse.
    let arch = two_level_arch(None);
    let system = System::new(arch, MappingStrategy::default());
    let layer = Layer::conv2d("sparse", 1, 4, 4, 5, 5, 2, 2).with_stride(4, 4);
    let eval = system.evaluate_layer(&layer).unwrap();
    assert_eq!(eval.analysis.macs, layer.macs());
    // Input footprint: (5-1)*4 + (2-1) + 1 = 18 per side.
    assert_eq!(layer.input_rows(5, 2), 18);
    assert!(eval.energy.total().is_finite());
}

#[test]
fn fusion_with_unknown_level_names_degrades_gracefully() {
    use lumen::core::NetworkOptions;
    let arch = two_level_arch(None);
    let system = System::new(arch, MappingStrategy::default());
    let net = lumen::workload::Network::new("n").push(Layer::conv2d("c", 1, 4, 4, 4, 4, 1, 1));
    // Level "nonexistent" is silently ignored (no reroute) rather than
    // panicking — fusion is a modeling option, not a hard constraint.
    let options = NetworkOptions::baseline().with_fusion("nonexistent", "buf");
    let eval = system.evaluate_network(&net, &options).unwrap();
    assert!(eval.energy.total() > Energy::ZERO);
}
