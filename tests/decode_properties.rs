//! Property and invariant tests for the autoregressive decode path.
//!
//! Random decode shapes drive the lowering's closed forms; the GPT-2
//! small decode builders drive the toy, Albireo and digital-baseline
//! systems. The properties: a GEMV is bit-identical to the equivalent
//! single-row `Matmul`, decode-trace MACs are monotonically nondecreasing
//! in KV length, analytic MAC totals match layer sums across KV lengths,
//! every energy is finite and positive, and the KV-cache residency
//! semantics (first token, replication under batching,
//! `Attention::with_batch` interaction) are pinned.

use lumen::albireo::{AlbireoConfig, DigitalBaseline, ScalingProfile};
use lumen::arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen::core::{EvalSession, MappingStrategy, NetworkOptions, System};
use lumen::mapper::search::SearchConfig;
use lumen::units::{Energy, Frequency};
use lumen::workload::{networks, Attention, DecodePhase, Dim, DimSet, Layer, TensorSet};
use proptest::prelude::*;

fn toy_arch() -> Architecture {
    ArchBuilder::new("decode-toy", Frequency::from_gigahertz(1.0))
        .storage("dram", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(100.0))
        .write_energy(Energy::from_picojoules(100.0))
        .done()
        .storage("glb", Domain::DigitalElectrical, TensorSet::all())
        .read_energy(Energy::from_picojoules(1.0))
        .write_energy(Energy::from_picojoules(1.0))
        .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
        .done()
        .compute(
            "mac",
            Domain::DigitalElectrical,
            Energy::from_picojoules(0.05),
        )
        .build()
        .expect("toy architecture is valid")
}

fn strategies() -> Vec<(&'static str, MappingStrategy)> {
    vec![
        ("greedy", MappingStrategy::default()),
        (
            "random-search",
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 25,
                seed: 0xDEC0DE,
            }),
        ),
    ]
}

/// A GEMV constructed via [`Layer::gemv`] is the same layer as the
/// equivalent `Matmul` with one output row: equal signatures, and
/// bit-identical mappings, analyses and energies under both
/// deterministic mapping-strategy families.
#[test]
fn gemv_is_bit_identical_to_single_row_matmul() {
    for (strategy_name, strategy) in strategies() {
        for (n, m, k) in [(1, 64, 32), (2, 768, 768), (1, 50257, 768)] {
            let gemv = Layer::gemv("as-gemv", n, m, k);
            let matmul = Layer::matmul("as-matmul", n, m, k, 1);
            assert_eq!(gemv.signature(), matmul.signature());

            let system = System::new(toy_arch(), strategy.clone());
            let a = system.evaluate_layer(&gemv).expect("gemv maps");
            let b = system.evaluate_layer(&matmul).expect("matmul maps");
            let ctx = format!("{strategy_name} n={n} m={m} k={k}");
            assert_eq!(a.mapping, b.mapping, "{ctx}: mapping");
            assert_eq!(a.analysis.cycles, b.analysis.cycles, "{ctx}: cycles");
            assert_eq!(
                a.energy.total().picojoules().to_bits(),
                b.energy.total().picojoules().to_bits(),
                "{ctx}: energy"
            );
        }
    }
}

/// Decode-trace MACs are monotonically nondecreasing in KV length —
/// strictly increasing unbucketed, plateaued within buckets.
#[test]
fn decode_trace_macs_are_monotone_in_kv_length() {
    let exact: Vec<u64> = networks::gpt2_small_decode_trace(0, 96, 1)
        .map(|(_, net)| net.total_macs())
        .collect();
    assert!(exact.windows(2).all(|w| w[0] < w[1]), "exact trace strict");

    let bucketed: Vec<u64> = networks::gpt2_small_decode_trace(0, 96, 32)
        .map(|(_, net)| net.total_macs())
        .collect();
    assert!(
        bucketed.windows(2).all(|w| w[0] <= w[1]),
        "bucketed trace nondecreasing"
    );
    // Bucketing only ever pads upward.
    for (e, b) in exact.iter().zip(&bucketed) {
        assert!(b >= e);
    }
}

/// Analytic MAC totals match the layer-sum totals for the GPT-2 small
/// decode builder across KV lengths, both as built and as re-derived by
/// the nest analysis on a real system.
#[test]
fn analytic_decode_totals_match_layer_sums() {
    let session = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    for kv_len in [0, 1, 63, 128, 1023] {
        let net = networks::gpt2_small_decode(kv_len);
        let layer_sum: u64 = net.layers().iter().map(Layer::macs).sum();
        assert_eq!(
            layer_sum,
            networks::gpt2_small_decode_macs(kv_len),
            "kv={kv_len}"
        );

        let eval = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .expect("decode step maps");
        let analyzed: u64 = eval.per_layer.iter().map(|l| l.analysis.macs).sum();
        assert_eq!(analyzed, layer_sum, "kv={kv_len}: analysis re-derives MACs");
    }
}

/// Every energy of a decode step is finite and positive on the toy
/// system, the photonic Albireo (all corners) and the digital baseline.
#[test]
fn decode_energies_finite_and_positive_everywhere() {
    let mut systems = vec![(
        "toy".to_string(),
        System::new(toy_arch(), MappingStrategy::default()),
    )];
    for scaling in ScalingProfile::ALL {
        systems.push((
            format!("albireo-{scaling}"),
            AlbireoConfig::new(scaling).build_system(),
        ));
    }
    systems.push(("digital".to_string(), DigitalBaseline::new().build_system()));

    for (name, system) in systems {
        let session = EvalSession::new(system);
        for kv_len in [0, 511] {
            let net = networks::gpt2_small_decode(kv_len);
            let eval = session
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap_or_else(|e| panic!("{name} kv={kv_len}: {e}"));
            assert!(eval.energy.total().is_finite(), "{name} kv={kv_len}");
            assert!(eval.energy.total() > Energy::ZERO, "{name} kv={kv_len}");
            for layer_eval in &eval.per_layer {
                assert!(
                    layer_eval.energy.total().is_finite()
                        && layer_eval.energy.total() > Energy::ZERO,
                    "{name} kv={kv_len}: {}",
                    layer_eval.layer_name
                );
                for item in layer_eval.energy.items() {
                    assert!(item.energy.raw() >= 0.0, "{name}: negative item");
                }
            }
        }
    }
}

/// The pinned first-token semantics: `kv_len = 0` is legal, attends over
/// exactly the new token, and still pays the cache-append write.
#[test]
fn first_token_decode_evaluates() {
    let session = EvalSession::new(System::new(toy_arch(), MappingStrategy::default()));
    let net = networks::gpt2_small_decode(0);
    let eval = session
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("first token maps");
    assert_eq!(eval.macs, networks::gpt2_small_decode_macs(0));
    // logits at kv=0: 12 heads x 1 position x 64 features per block.
    let logits = eval
        .per_layer
        .iter()
        .find(|l| l.layer_name == "decoder.0.attn.logits")
        .expect("logits evaluated");
    assert_eq!(logits.analysis.macs, 12 * 64);
    // kv=1 attends over two positions.
    let next = session
        .evaluate_network(&networks::gpt2_small_decode(1), &NetworkOptions::baseline())
        .expect("second token maps");
    assert_eq!(
        next.per_layer
            .iter()
            .find(|l| l.layer_name == "decoder.0.attn.logits")
            .unwrap()
            .analysis
            .macs,
        2 * 12 * 64
    );
}

/// The KV-residency energy term: a decode cache layer costs exactly its
/// identically-shaped non-resident twin plus the append write of one
/// token's K/V slice at the cache's DRAM home.
#[test]
fn kv_residency_charges_the_append_write() {
    let system = System::new(toy_arch(), MappingStrategy::default());
    let phase = DecodePhase::new("a", 768, 12).with_kv_len(127);
    let logits = phase
        .lower()
        .into_iter()
        .find(|l| l.name() == "a.logits")
        .unwrap();
    // The twin: same nest, same stationarity, no growing cache.
    let twin = Layer::matmul("twin", 1, 12 * 128, 768, 1)
        .with_groups(12)
        .with_per_sample_stationary();
    assert_ne!(logits.signature(), twin.signature());
    let resident = system.evaluate_layer(&logits).unwrap();
    let plain = system.evaluate_layer(&twin).unwrap();
    let diff = resident.energy.total().picojoules() - plain.energy.total().picojoules();
    // 768 appended elements x 100 pJ dram write.
    assert!((diff - 768.0 * 100.0).abs() < 1e-6, "append diff {diff}");
    assert_eq!(resident.analysis.cycles, plain.analysis.cycles);
}

/// Batching a decode step replicates the growing cache per sample — the
/// pinned `Attention::with_batch` interaction — and the replication
/// shows up in weight traffic, append energy and MACs alike.
#[test]
fn batched_decode_replicates_the_cache() {
    use lumen::workload::TensorKind;
    let step = Attention::new("a", 1024, 768, 12)
        .with_batch(4)
        .decode_step(255);
    assert_eq!(
        step.macs(),
        4 * DecodePhase::new("a", 768, 12).with_kv_len(255).macs()
    );
    let layers = step.lower();
    let logits = layers.iter().find(|l| l.name() == "a.logits").unwrap();
    // Four samples, four caches: footprint and append both scale.
    assert_eq!(logits.tensor_elements(TensorKind::Weight), 4 * 256 * 768);
    assert_eq!(logits.kv_append_elements(), 4 * 768);
    // Projections share their weights across the batch via N.
    let query = layers.iter().find(|l| l.name() == "a.query").unwrap();
    assert_eq!(query.tensor_elements(TensorKind::Weight), 768 * 768);
    assert_eq!(query.shape()[Dim::N], 4);

    // And the whole-network batched evaluation stays consistent.
    let system = System::new(toy_arch(), MappingStrategy::default());
    let net = networks::gpt2_small_decode(63);
    let base = system
        .evaluate_network(&net, &NetworkOptions::baseline())
        .unwrap();
    let batched = system
        .evaluate_network(&net, &NetworkOptions::baseline().with_batch(4))
        .unwrap();
    assert_eq!(base.macs, batched.macs, "per-inference MACs are batch-free");
    assert!(batched.energy.total().is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random decode shapes: the lowering's MAC sum always matches the
    /// closed form, cache layers carry the residency annotation, and
    /// bucketing pads the attend length up to the next multiple.
    #[test]
    fn decode_lowering_matches_closed_form(
        heads in 1usize..=8,
        head_dim in 1usize..=32,
        kv_len in 0usize..=300,
        bucket in 1usize..=64,
        batch in 1usize..=3,
    ) {
        let d_model = heads * head_dim;
        let phase = DecodePhase::new("p", d_model, heads)
            .with_kv_len(kv_len)
            .with_kv_bucket(bucket)
            .with_batch(batch);
        let len = phase.attend_len();
        prop_assert!(len > kv_len && len < kv_len + 1 + bucket);
        prop_assert_eq!(len % bucket, 0);
        let layers = phase.lower();
        prop_assert_eq!(layers.len(), 6);
        let sum: u64 = layers.iter().map(Layer::macs).sum();
        prop_assert_eq!(sum, phase.macs());
        for layer in &layers {
            prop_assert_eq!(layer.shape()[Dim::P], 1, "decode is seq-1");
            if layer.name().ends_with("logits") || layer.name().ends_with("attend") {
                prop_assert!(layer.kv_cache_resident());
                prop_assert_eq!(layer.kv_append_elements(), (batch * d_model) as u64);
            } else {
                prop_assert!(!layer.kv_cache_resident());
            }
        }
    }

    /// Random decode GEMVs map and cost finite, positive energy.
    #[test]
    fn decode_step_energy_finite(
        heads in 1usize..=4,
        head_dim in 1usize..=16,
        kv_len in 0usize..=64,
    ) {
        let phase = DecodePhase::new("p", heads * head_dim, heads).with_kv_len(kv_len);
        let system = System::new(toy_arch(), MappingStrategy::default());
        for layer in phase.lower() {
            let eval = system.evaluate_layer(&layer).unwrap();
            prop_assert!(eval.energy.total().is_finite());
            prop_assert!(eval.energy.total() > Energy::ZERO);
            prop_assert_eq!(eval.analysis.macs, layer.macs());
        }
    }
}
