//! Smoke tests mirroring the `examples/` programs.
//!
//! `cargo check --examples` (enforced in CI) proves the examples compile;
//! these tests additionally exercise the core logic each example runs, so
//! an API change that keeps an example compiling but breaks its output
//! path still fails the suite.
//!
//! The suite's tests run concurrently on the harness's own threads, and
//! the heavyweight ones (transformer / decode / serving — all on the
//! same aggressive-corner Albireo system) additionally share one
//! process-wide [`EvalCache`], so identical layer evaluations are paid
//! once across the whole binary instead of once per test. Stats
//! assertions read [`EvalSession::cache_stats`] — per-*session* counters
//! isolated from the concurrent tests sharing the cache — and search
//! counts are asserted as upper bounds, since a sibling test may have
//! populated the shared entries first. The serving test runs a
//! deliberately small schedule: the full-size study is already
//! golden-pinned by `tests/golden.rs`, and re-running it here would push
//! the smoke suite past CI-friendly wall time.

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile, WeightReuse};
use lumen::core::dse::{pareto_front, sweep, DesignPoint};
use lumen::core::report::{breakdown_table, network_table_deduped};
use lumen::core::{EvalCache, EvalSession, NetworkOptions};
use lumen::units::Energy;
use lumen::workload::networks;
use std::sync::{Arc, OnceLock};

/// One cache for every smoke test that evaluates on the aggressive
/// Albireo system: keys embed the architecture fingerprint, so sharing
/// across tests (and with differently-built sessions) is safe by
/// construction and saves re-mapping the overlapping signatures.
fn shared_aggressive_cache() -> Arc<EvalCache> {
    static CACHE: OnceLock<Arc<EvalCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(EvalCache::shared))
}

/// A session over the aggressive Albireo system backed by the shared
/// smoke-suite cache.
fn shared_aggressive_session() -> EvalSession {
    EvalSession::new(AlbireoConfig::new(ScalingProfile::Aggressive).build_system())
        .with_cache(shared_aggressive_cache())
}

/// The `quickstart` example's pipeline: build the conservative Albireo
/// system, evaluate a ResNet-18 layer, and check the headline quantities
/// it prints are physical.
#[test]
fn quickstart_layer_evaluation_returns_positive_energy() {
    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    let net = networks::resnet18();
    let layer = &net.layers()[1];
    let eval = system
        .evaluate_layer(layer)
        .expect("layer maps onto Albireo");

    assert!(
        eval.energy.total() > Energy::ZERO,
        "total energy is positive"
    );
    assert!(
        eval.energy_per_mac().picojoules() > 0.0,
        "per-MAC energy is positive"
    );
    assert!(eval.analysis.utilization > 0.0 && eval.analysis.utilization <= 1.0 + 1e-9);
    assert!(eval.analysis.cycles > 0);

    let rendered = breakdown_table(&eval.energy).render();
    assert!(!rendered.is_empty(), "breakdown table renders");
}

/// The `design_space` example's pipeline: sweep named variants and take a
/// Pareto front over (energy, cycles).
#[test]
fn design_space_sweep_and_pareto_run() {
    let net = networks::alexnet();
    let points = vec![
        DesignPoint::new(
            "conservative",
            AlbireoConfig::new(ScalingProfile::Conservative).build_system(),
        ),
        DesignPoint::new(
            "aggressive",
            AlbireoConfig::new(ScalingProfile::Aggressive).build_system(),
        ),
    ];
    let entries = sweep(points, &net).expect("sweep evaluates");
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].label, "conservative");

    let objectives: Vec<(f64, f64)> = entries
        .iter()
        .map(|e| (e.evaluation.energy.total().joules(), e.evaluation.cycles))
        .collect();
    let front = pareto_front(&objectives);
    assert!(!front.is_empty(), "at least one non-dominated point");
}

/// The `full_system_dram` example's pipeline: batching amortizes DRAM
/// weight traffic, so batched energy per inference is lower.
#[test]
fn full_system_batching_reduces_per_inference_energy() {
    let net = networks::resnet18();
    let system = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
    let base = system
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("baseline evaluates");
    let batched = system
        .evaluate_network(&net, &NetworkOptions::baseline().with_batch(16))
        .expect("batched evaluates");
    let base_per_inf = base.energy.total().joules();
    let batched_per_inf = batched.energy.total().joules() / 16.0;
    assert!(
        batched_per_inf < base_per_inf,
        "batching reduces per-inference energy ({batched_per_inf} vs {base_per_inf})"
    );
}

/// The `reuse_exploration` example's pipeline: the Fig. 5 sweep finds a
/// configuration at least as good as the published one.
#[test]
fn reuse_exploration_finds_no_worse_than_original() {
    let result = experiments::fig5_reuse_exploration().expect("fig5 evaluates");
    assert!(result.best().total_pj() <= result.original().total_pj());
    assert!(result
        .rows
        .iter()
        .any(|r| r.weight_reuse == WeightReuse::More));
}

/// The `transformer_study` example's pipeline: the study evaluates, and
/// the per-head attention matmuls (K/V stationary, worst arithmetic
/// intensity) cost more per MAC than the projection matmuls.
#[test]
fn transformer_study_attention_costs_more_per_mac() {
    let result = experiments::transformer_study(ScalingProfile::Aggressive)
        .expect("transformer study evaluates");
    assert_eq!(result.rows.len(), 3);

    // The example evaluates bert-base through the content-addressed
    // session and renders the deduplicated per-layer table.
    let session = shared_aggressive_session();
    let net = networks::bert_base();
    let eval = session
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("bert-base maps");
    let pj = |name: &str| {
        eval.per_layer
            .iter()
            .find(|l| l.layer_name == name)
            .expect("layer evaluated")
            .energy_per_mac()
            .picojoules()
    };
    assert!(pj("encoder.0.attn.logits") > pj("encoder.0.attn.query"));
    assert!(pj("encoder.0.attn.attend") > pj("encoder.0.mlp.fc1"));
    let stats = session.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        96,
        "every bert-base layer evaluation is accounted for"
    );
    assert!(
        stats.misses <= 5,
        "at most 5 unique signatures cost a search"
    );
    let deduped = network_table_deduped(&eval).render();
    assert!(deduped.contains("x48") && deduped.contains("x12"));
}

/// The `decode_study` example's pipeline: the KV-length sweep evaluates,
/// the photonic/digital utilization gap widens from prefill to seq-1
/// decode, and a bucketed decode trace through one session is answered
/// almost entirely from the cache.
#[test]
fn decode_study_gap_widens_and_trace_is_cheap() {
    let result =
        experiments::decode_study(ScalingProfile::Aggressive).expect("decode study evaluates");
    assert_eq!(result.rows.len(), experiments::DECODE_KV_LENGTHS.len());
    for row in &result.rows {
        assert!(
            row.utilization_gap() > result.prefill.utilization_gap(),
            "kv={}: decode gap {:.1}x vs prefill {:.1}x",
            row.kv_len,
            row.utilization_gap(),
            result.prefill.utilization_gap()
        );
    }
    assert!(result.trace_hit_rate() >= 0.9);

    // The example's trace segment: 32 steps in 16-token buckets through
    // one content-addressed session (the shared smoke-suite cache can
    // only lower the per-session search count further).
    let session = shared_aggressive_session();
    let mut layer_evals = 0usize;
    for (_, net) in networks::gpt2_small_decode_trace(0, 32, 16) {
        let eval = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .expect("decode step maps");
        layer_evals += eval.per_layer.len();
    }
    let stats = session.cache_stats();
    assert_eq!(layer_evals, 32 * 97);
    assert_eq!(stats.hits + stats.misses, layer_evals as u64);
    assert!(
        (stats.misses as usize) * 10 <= layer_evals,
        "{} searches for {layer_evals} evaluations",
        stats.misses
    );
}

/// The `serving_study` example's pipeline, scoped small: a short
/// bimodal schedule through the shared session preserves tokens,
/// respects capacity, and answers almost every layer from the cache.
/// The full-size study (all mixes x capacities x corners) is
/// golden-pinned in `tests/golden.rs`; running it here too would only
/// re-spend the smoke suite's wall-time budget.
#[test]
fn serving_smoke_schedule_conserves_tokens_and_hits_cache() {
    use lumen::core::serving::serving_sweep;
    use lumen::workload::{BatchSchedule, RequestMix, ServingModel};

    let mix = RequestMix::bimodal(21, 6, (64, 6), (512, 18), 33);
    let schedule = BatchSchedule::build(&mix, 3);
    let session = shared_aggressive_session();
    let result = serving_sweep(
        &session,
        &ServingModel::gpt2_small(),
        &schedule,
        experiments::SERVING_KV_BUCKET,
        &NetworkOptions::baseline(),
    )
    .expect("schedule evaluates");

    assert_eq!(result.total_tokens(), mix.total_output_tokens());
    assert!(result
        .points
        .iter()
        .all(|p| p.occupancy >= 1 && p.occupancy <= 3));
    assert!(result.pj_per_token() > 0.0 && result.total_energy() > Energy::ZERO);
    assert!(result.mean_occupancy() > 0.0 && result.mean_occupancy() <= 1.0);
    let stats = session.cache_stats();
    let evals = stats.hits + stats.misses;
    assert!(
        stats.misses * 10 <= evals,
        "{} searches for {evals} evaluations",
        stats.misses
    );
}

/// The `throughput_study` example's pipeline: modeled throughput never
/// exceeds the architecture's peak parallelism.
#[test]
fn throughput_study_stays_below_peak() {
    let result = experiments::fig3_throughput().expect("fig3 evaluates");
    for row in &result.rows {
        assert!(
            row.modeled <= row.ideal + 1e-9,
            "{}: modeled above ideal",
            row.network
        );
        assert!(row.modeled > 0.0);
    }
}
