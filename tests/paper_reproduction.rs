//! End-to-end reproduction tests: every figure of the paper's evaluation
//! regenerates with the shape the paper reports.
//!
//! These are *shape assertions*, not exact-number assertions — our
//! substrate is a reimplemented analytical model, so absolute values may
//! drift, but who wins, by roughly what factor, and where crossovers fall
//! must match the paper (see "Reproduction policy" in README.md).

use lumen::albireo::{experiments, ScalingProfile, WeightReuse};

#[test]
fn fig2_validation_reproduces_sub_percent_error() {
    let result = experiments::fig2_energy_breakdown().expect("fig2 evaluates");
    // The paper reports 0.4% average overall energy error.
    assert!(
        result.average_error() < 0.015,
        "average error {:.2}% too large",
        100.0 * result.average_error()
    );
    // Scaling corners are ordered and roughly 3.5 / 1.5 / 0.55 pJ/MAC.
    let totals: Vec<f64> = result
        .rows
        .iter()
        .map(experiments::Fig2Row::modeled_total)
        .collect();
    assert!(
        totals[0] > 3.0 && totals[0] < 4.0,
        "conservative {totals:?}"
    );
    assert!(totals[1] > 1.2 && totals[1] < 1.8, "moderate {totals:?}");
    assert!(totals[2] > 0.4 && totals[2] < 0.8, "aggressive {totals:?}");
}

#[test]
fn fig2_every_component_within_ten_percent() {
    let result = experiments::fig2_energy_breakdown().expect("fig2 evaluates");
    for row in &result.rows {
        for (i, (m, r)) in row.modeled.iter().zip(row.reported.iter()).enumerate() {
            let err = (m - r).abs() / r;
            assert!(
                err < 0.10,
                "{} component {i} off by {:.1}%",
                row.scaling,
                100.0 * err
            );
        }
    }
}

#[test]
fn fig3_vgg_near_ideal_alexnet_degraded() {
    let result = experiments::fig3_throughput().expect("fig3 evaluates");
    let vgg = result.rows.iter().find(|r| r.network == "vgg16").unwrap();
    let alex = result.rows.iter().find(|r| r.network == "alexnet").unwrap();
    // VGG16 (all unit-stride 3x3 convs) stays near ideal.
    assert!(
        vgg.modeled / vgg.ideal >= 0.85,
        "vgg {:.2}",
        vgg.modeled / vgg.ideal
    );
    // AlexNet (stride-4 conv1 + three FC layers) degrades significantly.
    assert!(
        alex.modeled / alex.ideal <= 0.45,
        "alex {:.2}",
        alex.modeled / alex.ideal
    );
    // The reported numbers are near ideal for BOTH — the paper's point is
    // that a throughput-accurate model disagrees for AlexNet.
    assert!(alex.reported / alex.ideal >= 0.90);
    assert!(
        alex.reported / alex.modeled >= 2.0,
        "the model must show a large gap versus reported"
    );
}

#[test]
fn fig4_dram_dominates_aggressive_scaling_only() {
    let result = experiments::fig4_memory_exploration().expect("fig4 evaluates");
    let aggressive = result.row(ScalingProfile::Aggressive, false, false);
    let conservative = result.row(ScalingProfile::Conservative, false, false);
    // Paper: DRAM ~75% of the aggressively-scaled system, small for the
    // conservative one.
    assert!(
        aggressive.dram_share() >= 0.60,
        "aggressive {:.2}",
        aggressive.dram_share()
    );
    assert!(
        conservative.dram_share() <= 0.30,
        "conservative {:.2}",
        conservative.dram_share()
    );
    assert!(aggressive.dram_share() > 2.0 * conservative.dram_share());
}

#[test]
fn fig4_batching_plus_fusion_restore_aggressive_benefits() {
    let result = experiments::fig4_memory_exploration().expect("fig4 evaluates");
    // Paper: 67% reduction ("3x improvement"); we require >= 55%.
    let reduction = result.combined_reduction(ScalingProfile::Aggressive);
    assert!(reduction >= 0.55, "combined reduction {reduction:.2}");
    // Each lever alone helps at the aggressive corner.
    let base = result
        .row(ScalingProfile::Aggressive, false, false)
        .total_mj();
    let batched = result
        .row(ScalingProfile::Aggressive, true, false)
        .total_mj();
    let fused = result
        .row(ScalingProfile::Aggressive, false, true)
        .total_mj();
    assert!(batched < base, "batching helps");
    assert!(fused < base, "fusion helps");
    // And the conservative corner barely moves (its DRAM share is small).
    let cons_reduction = result.combined_reduction(ScalingProfile::Conservative);
    assert!(
        cons_reduction < reduction / 2.0,
        "conservative gains are modest"
    );
}

#[test]
fn fig4_batching_cuts_weight_traffic_specifically() {
    let result = experiments::fig4_memory_exploration().expect("fig4 evaluates");
    let base = result.row(ScalingProfile::Aggressive, false, false);
    let batched = result.row(ScalingProfile::Aggressive, true, false);
    // DRAM segment shrinks by > 2x from batch 16 (weights dominate
    // ResNet18's DRAM traffic at batch 1).
    assert!(
        batched.segments_mj[5] < base.segments_mj[5] / 2.0,
        "batched DRAM {} vs base {}",
        batched.segments_mj[5],
        base.segments_mj[5]
    );
    // Accelerator-side segments are unchanged by batching.
    for i in 0..4 {
        let rel = (batched.segments_mj[i] - base.segments_mj[i]).abs() / base.segments_mj[i];
        assert!(rel < 0.05, "segment {i} should not move with batching");
    }
}

#[test]
fn fig5_more_reuse_cuts_converter_and_accelerator_energy() {
    let result = experiments::fig5_reuse_exploration().expect("fig5 evaluates");
    assert_eq!(result.rows.len(), 18, "2 weight variants x 3 OR x 3 IR");
    // Paper: 42% converter / 31% accelerator reduction; we require the
    // same direction with at least 35% / 25%.
    assert!(result.converter_reduction() >= 0.35);
    assert!(result.accelerator_reduction() >= 0.25);
}

#[test]
fn fig5_reuse_knobs_act_on_their_own_conversion_class() {
    let result = experiments::fig5_reuse_exploration().expect("fig5 evaluates");
    let find = |wr: WeightReuse, or: usize, ir: usize| {
        result
            .rows
            .iter()
            .find(|r| r.weight_reuse == wr && r.output_reuse == or && r.input_reuse == ir)
            .expect("config present")
    };
    // IR cuts input conversions.
    let base = find(WeightReuse::Original, 3, 9);
    let more_ir = find(WeightReuse::Original, 3, 45);
    assert!(more_ir.segments_pj_per_mac[2] < base.segments_pj_per_mac[2]);
    // OR cuts output conversions.
    let more_or = find(WeightReuse::Original, 15, 9);
    assert!(more_or.segments_pj_per_mac[3] < base.segments_pj_per_mac[3]);
    // WR cuts weight conversions.
    let more_wr = find(WeightReuse::More, 3, 9);
    assert!(more_wr.segments_pj_per_mac[1] < base.segments_pj_per_mac[1]);
}
