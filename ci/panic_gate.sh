#!/usr/bin/env bash
# Ratchet on panic!/unwrap() in library code.
#
# Counts `panic!(` and `.unwrap()` occurrences in non-test library
# source (everything before the first `#[cfg(test)]` in each file under
# crates/*/src and src/; shims/ and integration tests are out of
# scope — test code may panic freely) and fails when either count rises
# above the checked-in baseline. New fallible paths should return typed
# errors (`ArchError`, `SystemError`, ...) instead.
#
# When a count legitimately drops, lower the baseline here so the
# ratchet keeps holding the line.
set -euo pipefail
cd "$(dirname "$0")/.."

PANIC_BASELINE=0
UNWRAP_BASELINE=0

count() {
  # Comment lines are excluded: doctest examples may unwrap().
  local pattern=$1 total=0 n file
  while IFS= read -r file; do
    n=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//{print}' "$file" |
      grep -c -E "$pattern" || true)
    total=$((total + n))
  done < <(find crates/*/src src -name '*.rs' | sort)
  echo "$total"
}

panics=$(count 'panic!\(')
unwraps=$(count '\.unwrap\(\)')
status=0

echo "panic! in library code:   $panics (baseline $PANIC_BASELINE)"
echo ".unwrap() in library code: $unwraps (baseline $UNWRAP_BASELINE)"

if [ "$panics" -gt "$PANIC_BASELINE" ]; then
  echo "error: new panic!() in library code; return a typed error instead" >&2
  status=1
fi
if [ "$unwraps" -gt "$UNWRAP_BASELINE" ]; then
  echo "error: new .unwrap() in library code; propagate the error instead" >&2
  status=1
fi
if [ "$panics" -lt "$PANIC_BASELINE" ] || [ "$unwraps" -lt "$UNWRAP_BASELINE" ]; then
  echo "note: counts dropped below baseline; tighten ci/panic_gate.sh"
fi
exit "$status"
