//! # Lumen
//!
//! Architecture-level modeling of photonic deep neural network accelerators.
//!
//! This facade crate re-exports the entire Lumen workspace so applications
//! can depend on a single crate:
//!
//! * [`units`] — strongly-typed physical quantities (energy, power, area, ...)
//! * [`workload`] — DNN layer/network shapes (AlexNet, VGG16, ResNet18, ...)
//! * [`components`] — energy/area models for digital, analog, and photonic
//!   components (SRAM, DRAM, ADC, DAC, microrings, modulators, lasers, ...)
//! * [`arch`] — hierarchical architecture specifications with electrical /
//!   optical domain tracking
//! * [`mapper`] — Timeloop-style loop-nest mapping and reuse analysis
//! * [`lint`] — static pre-flight analysis (`lumen check`): structured
//!   `L####` diagnostics over architectures, workloads, strategies and
//!   serving schedules
//! * [`core`] — the full-system energy / throughput / area evaluator
//! * [`albireo`] — the Albireo (ISCA 2021) photonic accelerator case study
//!   and the paper's experiments (Figures 2–5)
//!
//! # Quickstart
//!
//! ```
//! use lumen::albireo::{AlbireoConfig, ScalingProfile};
//! use lumen::workload::networks;
//!
//! // Build the aggressively-scaled Albireo system (accelerator + DRAM).
//! let system = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
//!
//! // Evaluate one ResNet-18 layer end to end.
//! let net = networks::resnet18();
//! let result = system.evaluate_layer(&net.layers()[1]).unwrap();
//! assert!(result.energy.total().picojoules() > 0.0);
//! ```

pub use lumen_albireo as albireo;
pub use lumen_arch as arch;
pub use lumen_components as components;
pub use lumen_core as core;
pub use lumen_lint as lint;
pub use lumen_mapper as mapper;
pub use lumen_units as units;
pub use lumen_workload as workload;
